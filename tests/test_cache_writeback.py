"""Write-back SCM cache: absorption, batched destaging, durability, fsck.

The tentpole semantics under test:

* writes to cache-resident slow-tier blocks update the DAX slot in place
  and mark the block dirty (absorption);
* dirty runs destage in coalesced batches on fsync, close, eviction,
  migration, and the writeback budget — and the destage is made durable
  on the receiving tier;
* a crash with dirty SCM blocks is legal (the cache file is on PM):
  fsck reports them as destageable and ``reconcile_cache`` pushes them
  out on recovery;
* scan-resistant admission keeps streaming reads from flushing the
  MGLRU hot set.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.workloads import cache_writeback
from repro.core import calibration as cal
from repro.core.cache import ScmCacheManager
from repro.core.intervals import BlockIntervalSet
from repro.core.policy import MigrationOrder
from repro.core.health import HealthState
from repro.errors import CrashTriggered, DeviceIoError, TierUnavailable
from repro.stack import build_stack
from repro.tools.fsck import check_mux, reconcile_cache
from repro.vfs.interface import OpenFlags

BS = 4096


def nova_factory():
    """Fresh NOVA + clock per call (hypothesis needs per-example state)."""
    from repro.devices.pm import PersistentMemoryDevice
    from repro.fs.nova import NovaFileSystem
    from repro.sim.clock import SimClock

    clock = SimClock()
    pm = PersistentMemoryDevice("pm0", 64 * 1024 * 1024, clock)
    return NovaFileSystem("nova", pm, clock), clock


@pytest.fixture
def wb():
    return build_stack(cache_write_back=True)


def demoted_warm_file(stack, path="/f", blocks=8, to="hdd"):
    """Create ``path``, demote its blocks to ``to``, warm the SCM cache."""
    mux = stack.mux
    handle = mux.create(path)
    mux.write(handle, 0, bytes(blocks * BS))
    mux.engine.migrate_now(
        MigrationOrder(
            handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id(to)
        )
    )
    mux.read(handle, 0, blocks * BS)  # every block now cache-resident
    assert mux.cache.cached_blocks >= blocks
    return handle


class TestAbsorption:
    def test_write_to_cached_block_is_absorbed(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        hdd_writes = wb.devices["hdd"].stats.write_ops
        mux.write(handle, 2 * BS, b"A" * BS)
        assert mux.stats.get("writes_absorbed") == 1
        assert mux.cache.dirty_block_count == 1
        assert mux.cache.is_dirty(handle.ino, 2)
        # nothing reached the slow tier yet
        assert wb.devices["hdd"].stats.write_ops == hdd_writes
        assert mux.read(handle, 2 * BS, BS) == b"A" * BS
        mux.close(handle)

    def test_partial_block_write_absorbed_in_place(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 10, b"FRESH")
        assert mux.stats.get("writes_absorbed") == 1
        data = mux.read(handle, 0, 32)
        assert data[10:15] == b"FRESH"
        assert data[:10] == bytes(10)  # rest of the block kept
        assert mux.cache.is_dirty(handle.ino, 0)  # whole block marked
        mux.close(handle)

    def test_multi_block_write_absorbed(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, BS, b"B" * (3 * BS))
        assert mux.stats.get("writes_absorbed") == 1
        assert mux.cache.dirty_runs(handle.ino) == [(1, 3)]
        assert mux.read(handle, BS, 3 * BS) == b"B" * (3 * BS)
        mux.close(handle)

    def test_uncached_block_takes_invalidate_path(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.cache.invalidate_file(handle.ino)
        mux.write(handle, 0, b"C" * BS)
        assert mux.stats.get("writes_absorbed") == 0
        assert mux.cache.dirty_block_count == 0
        assert mux.read(handle, 0, BS) == b"C" * BS
        mux.close(handle)

    def test_pm_resident_blocks_not_absorbed(self, wb):
        """Absorption only applies to slow-tier blocks; PM writes are
        already at memory speed and must not detour through the cache."""
        mux = wb.mux
        handle = mux.create("/pmfile")
        mux.write(handle, 0, bytes(2 * BS))  # lands on pm
        mux.read(handle, 0, 2 * BS)
        mux.write(handle, 0, b"D" * BS)
        assert mux.stats.get("writes_absorbed") == 0
        mux.close(handle)

    def test_absorption_refused_during_migration(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        inode = mux.ns.get(handle.ino)
        inode.migration_active = True
        mux.write(handle, 0, b"E" * BS)
        inode.migration_active = False
        assert mux.stats.get("writes_absorbed") == 0
        mux.close(handle)

    def test_o_sync_absorbed_write_skips_slow_tier(self, wb):
        """O_SYNC is satisfied by the PM slot store itself — the paper's
        absorption win: synchronous small writes commit at memory speed."""
        mux = wb.mux
        handle = demoted_warm_file(wb, path="/sync")
        mux.close(handle)
        handle = mux.open("/sync", OpenFlags.RDWR | OpenFlags.SYNC)
        hdd = wb.devices["hdd"].stats
        writes, flushes = hdd.write_ops, hdd.flush_ops
        t0 = wb.clock.now_ns
        mux.write(handle, 0, b"F" * BS)
        sync_ns = wb.clock.now_ns - t0
        assert mux.stats.get("writes_absorbed") == 1
        assert (hdd.write_ops, hdd.flush_ops) == (writes, flushes)
        # far below a single HDD access; this is the latency headline
        assert sync_ns < 50_000
        mux.close(handle)

    def test_absorbed_write_updates_metadata(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        before = mux.getattr("/f").mtime
        wb.clock.advance_ns(1_000_000)
        mux.write(handle, 0, b"G" * BS)
        assert mux.getattr("/f").mtime > before
        mux.close(handle)


class TestDestage:
    def test_fsync_destages_and_persists(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 0, b"H" * BS)
        mux.write(handle, 5 * BS, b"I" * BS)
        assert mux.cache.dirty_block_count == 2
        mux.fsync(handle)
        assert mux.cache.dirty_block_count == 0
        assert mux.cache.stats.get("destaged_blocks") == 2
        # the slow tier now holds the absorbed bytes
        mux.cache.invalidate_file(handle.ino)
        assert mux.read(handle, 0, BS) == b"H" * BS
        assert mux.read(handle, 5 * BS, BS) == b"I" * BS
        mux.close(handle)

    def test_destage_coalesces_contiguous_runs(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        for fb in (2, 3, 4, 6):
            mux.write(handle, fb * BS, bytes([fb]) * BS)
        runs_before = mux.cache.stats.get("destage_runs")
        mux.fsync(handle)
        # [2,5) and [6,7): two coalesced tier writes, not four
        assert mux.cache.stats.get("destage_runs") - runs_before == 2
        assert mux.cache.stats.get("destaged_blocks") == 4
        mux.close(handle)

    def test_close_destages(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 0, b"J" * BS)
        mux.close(handle)
        assert wb.mux.cache.dirty_block_count == 0
        handle = mux.open("/f")
        mux.cache.invalidate_file(handle.ino)
        assert mux.read(handle, 0, BS) == b"J" * BS
        mux.close(handle)

    def test_close_destage_is_durable(self, wb):
        """Close moves bytes PM -> slow tier; they must not park in the
        slow tier's volatile page cache (that would *lose* durability)."""
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 3 * BS, b"K" * BS)
        mux.close(handle)
        mux.crash()
        mux.recover()
        handle = mux.open("/f")
        assert mux.read(handle, 3 * BS, BS) == b"K" * BS
        mux.close(handle)

    def test_writeback_budget_interval_destages(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 0, b"L" * BS)  # arms the writeback timer
        assert mux.cache.dirty_block_count == 1
        wb.clock.advance_ns(cal.CACHE_WRITEBACK_INTERVAL_NS + 1)
        mux.write(handle, 1 * BS, b"M" * BS)  # deadline passed: flush all
        assert mux.cache.dirty_block_count == 0
        assert mux.cache.stats.get("destaged_blocks") == 2
        mux.close(handle)

    def test_sync_destages_everything(self, wb):
        mux = wb.mux
        h1 = demoted_warm_file(wb, path="/s1")
        h2 = demoted_warm_file(wb, path="/s2")
        mux.write(h1, 0, b"N" * BS)
        mux.write(h2, 0, b"O" * BS)
        assert mux.cache.dirty_block_count == 2
        mux.sync()
        assert mux.cache.dirty_block_count == 0
        mux.close(h1)
        mux.close(h2)

    def test_migration_destages_first(self, wb):
        """OCC pre-step: absorbed bytes reach the source before the copy
        phase reads it, so the moved data includes them."""
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 0, b"P" * BS)
        hdd, ssd = wb.tier_id("hdd"), wb.tier_id("ssd")
        result = mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 8, hdd, ssd)
        )
        assert result.moved_blocks == 8
        assert mux.cache.dirty_block_count == 0
        assert mux.cache.cached_blocks == 0  # commit invalidated the range
        assert mux.read(handle, 0, BS) == b"P" * BS  # served from ssd
        mux.close(handle)


class TestEvictionDestage:
    """Unit-level: a dirty victim destages through the callback."""

    def _cache(self, nova, clock, capacity=4):
        return ScmCacheManager(
            clock, nova, capacity_blocks=capacity, block_size=BS,
            write_back=True,
        )

    def test_dirty_victim_destages_on_eviction(self, nova, clock):
        cache = self._cache(nova, clock)
        calls = []

        def destage(ino, runs):
            calls.append((ino, tuple(runs)))
            for start, count in runs:
                cache.mark_clean(ino, start, count)

        cache.destage_fn = destage
        for fb in range(4):
            cache.put(1, fb, bytes([fb]) * BS)
        cache.write_hit(1, 0, b"Q" * BS)
        for fb in range(4, 8):  # force evictions
            cache.put(2, fb, bytes([fb]) * BS)
        assert (1, ((0, 1),)) in calls
        assert cache.stats.get("destage_lost") == 0
        cache.check_invariants()

    def test_failed_destage_counts_lost(self, nova, clock):
        cache = self._cache(nova, clock)

        def destage(ino, runs):
            raise TierUnavailable("owner offline")

        cache.destage_fn = destage
        for fb in range(4):
            cache.put(1, fb, bytes([fb]) * BS)
        cache.write_hit(1, 0, b"R" * BS)
        for fb in range(4, 8):
            cache.put(2, fb, bytes([fb]) * BS)
        assert cache.stats.get("destage_lost") == 1
        assert cache.dirty_block_count == 0  # eviction completed anyway
        cache.check_invariants()

    def test_failed_destage_records_lost_interval(self, nova, clock):
        """The loss is a ledger entry and a callback, not just a counter —
        fsck reports exactly which bytes vanished, and the mux latches
        the inode's errseq through ``on_lost``."""
        cache = self._cache(nova, clock)
        latched = []
        cache.destage_fn = lambda ino, runs: (_ for _ in ()).throw(
            TierUnavailable("owner offline")
        )
        cache.on_lost = lambda ino, runs: latched.append((ino, tuple(runs)))
        for fb in range(4):
            cache.put(1, fb, bytes([fb]) * BS)
        cache.write_hit(1, 2, b"S" * BS)
        for fb in range(4, 8):
            cache.put(2, fb, bytes([fb]) * BS)
        assert cache.lost_intervals() == [(1, 2, 1)]
        assert latched == [(1, ((2, 1),))]
        cache.clear_lost(1)
        assert cache.lost_intervals() == []
        cache.check_invariants()

    def test_crash_during_destage_is_not_a_loss(self, nova, clock):
        """Power loss mid-destage must propagate (the explorer depends on
        it) — absorbing it as a destage failure would mark PM-durable
        dirty blocks clean and fake a data loss that never happened."""
        cache = self._cache(nova, clock)
        cache.destage_fn = lambda ino, runs: (_ for _ in ()).throw(
            CrashTriggered("power lost")
        )
        for fb in range(4):
            cache.put(1, fb, bytes([fb]) * BS)
        cache.write_hit(1, 0, b"T" * BS)
        with pytest.raises(CrashTriggered):
            for fb in range(4, 8):
                cache.put(2, fb, bytes([fb]) * BS)
        assert cache.stats.get("destage_lost") == 0
        assert cache.lost_intervals() == []


class TestCrashAndReconcile:
    def test_dirty_blocks_survive_crash_and_reconcile(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 1 * BS, b"S" * BS)
        mux.write(handle, 2 * BS, b"T" * BS)
        mux.crash()
        mux.recover()
        # legal state: dirty PM-resident blocks; fsck reports them as
        # destageable, not as corruption
        assert mux.cache.dirty_block_count == 2
        assert check_mux(mux, deep=False) == []
        # the cache still serves the absorbed bytes meanwhile
        handle = mux.open("/f")
        assert mux.read(handle, 1 * BS, BS) == b"S" * BS
        assert reconcile_cache(mux) == 2
        assert mux.cache.dirty_block_count == 0
        mux.cache.invalidate_file(handle.ino)
        assert mux.read(handle, 1 * BS, BS) == b"S" * BS  # now from hdd
        assert mux.read(handle, 2 * BS, BS) == b"T" * BS
        mux.close(handle)

    def test_fsck_flags_orphaned_dirty_marks(self, wb):
        mux = wb.mux
        dirty = BlockIntervalSet()
        dirty.add(0)
        mux.cache._dirty[9999] = dirty
        problems = check_mux(mux, deep=False)
        assert any("dead ino 9999" in p for p in problems)
        assert reconcile_cache(mux) == 1
        assert mux.cache.dirty_block_count == 0

    def test_reconcile_noop_without_write_back(self):
        stack = build_stack()
        assert reconcile_cache(stack.mux) == 0

    def test_lost_ledger_survives_crash_and_is_reported(self, wb):
        """The loss ledger lives with the cache metadata on PM, so a
        pre-crash destage loss is still reportable after recovery —
        fsck names the interval and reconcile acknowledges it."""
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.cache._lost.setdefault(handle.ino, []).append((3, 2))
        mux.crash()
        mux.recover()
        problems = check_mux(mux, deep=False)
        assert any("lost to a failed destage" in p for p in problems)
        report = []
        reconcile_cache(mux, report)
        assert any(f"ino {handle.ino}" in line and "unrecoverable" in line
                   for line in report)
        assert mux.cache.lost_intervals() == []
        assert check_mux(mux, deep=False) == []


class TestDegradedDestage:
    def test_offline_owner_defers_destage(self, wb):
        mux = wb.mux
        handle = demoted_warm_file(wb)
        mux.write(handle, 0, b"U" * BS)
        hdd_tier = mux.registry.get(wb.tier_id("hdd"))
        hdd_tier.health.mark_offline()
        wb.clock.advance_ns(cal.CACHE_WRITEBACK_INTERVAL_NS + 1)
        mux.write(handle, 1 * BS, b"V" * BS)  # budget fires, owner offline
        assert mux.stats.get("destage_deferred") >= 2
        assert mux.cache.dirty_block_count == 2  # kept for later
        hdd_tier.health.mark_online()
        mux.fsync(handle)
        assert mux.cache.dirty_block_count == 0
        mux.cache.invalidate_file(handle.ino)
        assert mux.read(handle, 0, BS) == b"U" * BS
        mux.close(handle)

    def test_persistent_destage_error_walks_owner_to_suspect(self, wb):
        """A latched media error on the owner tier during fsync destage:
        each fsync raises, the health machine walks HEALTHY -> SUSPECT
        after 3 consecutive failures, and (the owner being XFS, policy
        ``keep``) the dirty pages retry to durability once healed — no
        data loss on record."""
        mux = wb.mux
        xfs = wb.filesystems["ssd"]
        handle = demoted_warm_file(wb, blocks=2, to="ssd")
        mux.write(handle, 0, b"\x70" * (2 * BS))
        assert mux.cache.dirty_block_count == 2
        real = type(xfs.device).write_blocks

        def failing(block_no, data):
            if block_no >= xfs._data_base:
                raise DeviceIoError(
                    f"latched media error at block {block_no}", transient=False
                )
            return real(xfs.device, block_no, data)

        xfs.device.write_blocks = failing
        tier = mux.registry.get(wb.tier_id("ssd"))
        for _ in range(3):
            with pytest.raises(TierUnavailable):
                mux.fsync(handle)
        assert tier.health.state is HealthState.SUSPECT
        assert tier.health.consecutive_errors == 3
        # keep-policy: the failed pages wait, dirty, at the tier FS
        assert len(xfs.page_cache.dirty_items(handle.ino)) == 2
        del xfs.device.write_blocks
        mux.fsync(handle)  # the retry lands the data durably
        assert xfs.page_cache.dirty_items(handle.ino) == []
        assert xfs.lost_intervals() == []
        assert mux.lost_intervals() == []
        assert tier.health.consecutive_errors == 0
        mux.cache.invalidate_file(handle.ino)
        assert mux.read(handle, 0, BS) == b"\x70" * BS
        mux.close(handle)


class TestScanResist:
    def test_streaming_read_bypasses_fill(self):
        stack = build_stack(cache_scan_resist=True)
        mux = stack.mux
        blocks = cal.SCAN_RESIST_STREAM_BLOCKS + 256
        handle = mux.create("/stream")
        mux.write(handle, 0, bytes(blocks * BS))
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("hdd")
            )
        )
        span = 128 * BS
        for off in range(0, blocks * BS, span):
            mux.read(handle, off, span)
        assert mux.cache.stats.get("admit_bypass") >= 256
        # the stream stopped filling once the streak passed the threshold
        assert mux.cache.cached_blocks <= cal.SCAN_RESIST_STREAM_BLOCKS
        # correctness unaffected: re-read still returns the data
        assert mux.read(handle, (blocks - 1) * BS, BS) == bytes(BS)
        mux.close(handle)

    def test_point_reads_still_admitted(self):
        stack = build_stack(cache_scan_resist=True)
        mux = stack.mux
        handle = mux.create("/point")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, 8, stack.tier_id("pm"), stack.tier_id("hdd")
            )
        )
        for fb in (5, 1, 3):
            mux.read(handle, fb * BS, BS)
        assert mux.cache.cached_blocks == 3
        assert mux.cache.stats.get("admit_bypass") == 0
        mux.close(handle)


class TestSlowTierWriteReduction:
    def test_write_back_reduces_slow_tier_writes(self):
        """The acceptance headline: coalesced destaging beats per-write
        slow-tier I/O by a wide margin on the O_SYNC hot-write mix."""
        wb_stack = build_stack(cache_write_back=True)
        wb_counts = cache_writeback(
            wb_stack, file_bytes=1 * 1024 * 1024, operations=200
        )
        wi_stack = build_stack()
        wi_counts = cache_writeback(
            wi_stack, file_bytes=1 * 1024 * 1024, operations=200
        )
        assert wb_counts["write_hits"] > 0
        assert wb_counts["dirty_at_end"] == 0  # close destaged the rest
        # coalescing collapsed repeat overwrites of the hot range
        assert wb_counts["destaged_blocks"] < wb_counts["write_hits"]
        # >=4x fewer slow-tier device writes (observed ~50x)
        assert wb_counts["hdd_write_ops"] * 4 < wi_counts["hdd_write_ops"]
        # and the simulated loop is faster: no per-write HDD round trip
        assert wb_counts["loop_ns"] * 10 < wi_counts["loop_ns"]


class IterCountingDict(dict):
    """Counts whole-table scans; pop/getitem stay free."""

    def __init__(self, *args):
        super().__init__(*args)
        self.scans = 0

    def __iter__(self):
        self.scans += 1
        return super().__iter__()

    def keys(self):
        self.scans += 1
        return super().keys()

    def items(self):
        self.scans += 1
        return super().items()


class TestInvalidationComplexity:
    """invalidate_file/range must not scan the global slot table."""

    def _populated(self, nova, clock):
        cache = ScmCacheManager(
            clock, nova, capacity_blocks=64, block_size=BS, write_back=True
        )
        for fb in range(4):
            cache.put(1, fb, b"a" * BS)
        for fb in range(40):
            cache.put(2, fb, b"b" * BS)
        cache._slots = IterCountingDict(cache._slots)
        return cache

    def test_invalidate_file_touches_only_its_blocks(self, nova, clock):
        cache = self._populated(nova, clock)
        assert cache.invalidate_file(1) == 4
        assert cache._slots.scans == 0
        assert cache.cached_blocks == 40

    def test_invalidate_range_touches_only_its_blocks(self, nova, clock):
        cache = self._populated(nova, clock)
        assert cache.invalidate_range(2, 10, 5) == 5
        assert cache._slots.scans == 0
        assert cache.cached_blocks == 39


# ---------------------------------------------------------------------------
# property test: per-ino index + dirty-interval invariants under random ops
# ---------------------------------------------------------------------------

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(1, 3), st.integers(0, 15)),
        st.tuples(st.just("write_hit"), st.integers(1, 3), st.integers(0, 15)),
        st.tuples(st.just("get"), st.integers(1, 3), st.integers(0, 15)),
        st.tuples(st.just("invalidate"), st.integers(1, 3), st.integers(0, 15)),
        st.tuples(
            st.just("invalidate_range"), st.integers(1, 3), st.integers(0, 15)
        ),
        st.tuples(st.just("invalidate_file"), st.integers(1, 3), st.just(0)),
        st.tuples(st.just("mark_clean"), st.integers(1, 3), st.integers(0, 15)),
    ),
    min_size=1,
    max_size=60,
)


class TestPropertyInvariants:
    @settings(max_examples=120, deadline=None)
    @given(ops=OPS, capacity=st.integers(2, 10))
    def test_index_and_dirty_invariants(self, ops, capacity):
        nova, clock = nova_factory()
        cache = ScmCacheManager(
            clock, nova, capacity_blocks=capacity, block_size=BS,
            write_back=True,
        )
        marked = set()  # (ino, fb) we dirtied and never cleaned ourselves
        for op, ino, fb in ops:
            if op == "put":
                cache.put(ino, fb, bytes([ino]) * BS)
            elif op == "write_hit":
                if cache.write_hit(ino, fb, bytes([fb]) * BS):
                    marked.add((ino, fb))
            elif op == "get":
                cache.get(ino, fb)
            elif op == "invalidate":
                cache.invalidate(ino, fb)
                marked.discard((ino, fb))
            elif op == "invalidate_range":
                cache.invalidate_range(ino, fb, 3)
                for b in range(fb, fb + 3):
                    marked.discard((ino, b))
            elif op == "invalidate_file":
                cache.invalidate_file(ino)
                marked = {(i, b) for i, b in marked if i != ino}
            elif op == "mark_clean":
                cache.mark_clean(ino, fb, 2)
                marked.discard((ino, fb))
                marked.discard((ino, fb + 1))
            cache.check_invariants()
            # dirty set == marked blocks still resident (evictions destage
            # via destage_fn; with none installed they count destage_lost
            # and drop both the slot and the mark)
            actual = {
                (ino_, b)
                for ino_ in cache.dirty_files()
                for start, count in cache.dirty_runs(ino_)
                for b in range(start, start + count)
            }
            expected = {
                (i, b) for i, b in marked if cache.contains(i, b)
            }
            assert actual == expected
