"""Equivalence of the generation-number MGLRU against the scalar reference.

The production :class:`~repro.core.mglru.MultiGenLru` numbers generations
monotonically (deque + base counter) so an age step renumbers only the
merged generation.  The original implementation shifted a list of
generations and rebuilt the whole key->index map on every age — O(total
population), but trivially correct.  That implementation is inlined here
verbatim as ``ScalarMglru`` (the same embedded-oracle pattern as
``ScalarOccSynchronizer`` in tests/test_occ_runs.py) and both are driven
through identical operation interleavings: every eviction sequence, touch
and remove return value, generation index and length must match exactly.

A separate test pins the complexity claim: an age step must not write to
``_where`` entries outside the merged generation, and cache file
invalidation must never iterate the global slot table.
"""

from collections import OrderedDict
from typing import Dict, Generic, Hashable, List, Optional, TypeVar

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mglru import MultiGenLru

K = TypeVar("K", bound=Hashable)


class ScalarMglru(Generic[K]):
    """The original list-shifting MGLRU, kept verbatim as the oracle."""

    def __init__(self, capacity: int, num_generations: int = 4) -> None:
        self.capacity = capacity
        self.num_generations = num_generations
        self._gens: List["OrderedDict[K, None]"] = [
            OrderedDict() for _ in range(num_generations)
        ]
        self._where: Dict[K, int] = {}
        self.ages = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._where)

    def __contains__(self, key: K) -> bool:
        return key in self._where

    @property
    def generation_sizes(self) -> List[int]:
        return [len(g) for g in self._gens]

    def generation_of(self, key: K) -> Optional[int]:
        return self._where.get(key)

    def touch(self, key: K) -> bool:
        gen = self._where.get(key)
        if gen is None:
            return False
        if gen != 0:
            del self._gens[gen][key]
            self._gens[0][key] = None
            self._where[key] = 0
        else:
            self._gens[0].move_to_end(key)
        return True

    def insert(self, key: K) -> List[K]:
        if key in self._where:
            self.touch(key)
            return []
        evicted: List[K] = []
        while len(self._where) >= self.capacity:
            victim = self._evict_one()
            if victim is None:
                break
            evicted.append(victim)
        self._gens[0][key] = None
        self._where[key] = 0
        if len(self._gens[0]) > max(1, self.capacity // self.num_generations):
            self.age()
        return evicted

    def remove(self, key: K) -> bool:
        gen = self._where.pop(key, None)
        if gen is None:
            return False
        del self._gens[gen][key]
        return True

    def age(self) -> None:
        oldest = self._gens[-1]
        second = self._gens[-2]
        for key in second:
            oldest[key] = None
            self._where[key] = self.num_generations - 1
        merged = oldest
        self._gens = [OrderedDict()] + self._gens[:-2] + [merged]
        for gen_index, gen in enumerate(self._gens):
            for key in gen:
                self._where[key] = gen_index
        self.ages += 1

    def _evict_one(self) -> Optional[K]:
        for gen_index in range(self.num_generations - 1, -1, -1):
            gen = self._gens[gen_index]
            if gen:
                key, _ = gen.popitem(last=False)
                del self._where[key]
                self.evictions += 1
                return key
        return None


def assert_equivalent(fast: MultiGenLru, oracle: ScalarMglru, keys) -> None:
    assert len(fast) == len(oracle)
    assert fast.generation_sizes == oracle.generation_sizes
    assert fast.ages == oracle.ages
    assert fast.evictions == oracle.evictions
    for key in keys:
        assert (key in fast) == (key in oracle)
        assert fast.generation_of(key) == oracle.generation_of(key)
    # the oldest-first eviction order itself must be identical: drain both
    fast_order = [fast._evict_one() for _ in range(len(fast))]
    oracle_order = [oracle._evict_one() for _ in range(len(oracle))]
    assert fast_order == oracle_order


def drive(ops, capacity, gens):
    fast = MultiGenLru(capacity, num_generations=gens)
    oracle = ScalarMglru(capacity, num_generations=gens)
    keys = set()
    for op, key in ops:
        keys.add(key)
        if op == "insert":
            assert fast.insert(key) == oracle.insert(key)
        elif op == "touch":
            assert fast.touch(key) == oracle.touch(key)
        elif op == "remove":
            assert fast.remove(key) == oracle.remove(key)
        else:
            fast.age()
            oracle.age()
        fast.check_invariants()
    assert_equivalent(fast, oracle, keys)


class TestDirectedEquivalence:
    def test_fill_evict_sequence(self):
        ops = [("insert", i) for i in range(50)]
        drive(ops, capacity=8, gens=4)

    def test_touch_survival_pattern(self):
        ops = []
        for i in range(20):
            ops.append(("insert", i))
            if i % 3 == 0:
                ops.append(("touch", i // 2))
        drive(ops, capacity=6, gens=3)

    def test_explicit_ages_between_inserts(self):
        ops = []
        for i in range(30):
            ops.append(("insert", i % 11))
            if i % 4 == 0:
                ops.append(("age", 0))
            if i % 7 == 0:
                ops.append(("remove", i % 5))
        drive(ops, capacity=5, gens=4)

    def test_reinsert_is_touch(self):
        ops = [("insert", 1), ("insert", 2), ("insert", 1), ("age", 0),
               ("insert", 1), ("insert", 3), ("insert", 4), ("insert", 5)]
        drive(ops, capacity=3, gens=2)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "touch", "remove", "age"]),
            st.integers(0, 40),
        ),
        max_size=120,
    ),
    capacity=st.integers(1, 20),
    gens=st.integers(2, 6),
)
def test_mglru_matches_scalar_reference(ops, capacity, gens):
    drive(ops, capacity, gens)


# ---------------------------------------------------------------------------
# complexity pins: age() and invalidate_file must not scale with population
# ---------------------------------------------------------------------------


class WriteCountingDict(dict):
    """Counts __setitem__ calls — the work an age step does on _where."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.writes = 0

    def __setitem__(self, key, value):
        self.writes += 1
        super().__setitem__(key, value)


@pytest.mark.parametrize("population", [400, 4000])
def test_age_writes_bounded_by_merged_generation(population):
    lru = MultiGenLru(population, num_generations=4)
    for i in range(population):
        lru.insert(i)
    counting = WriteCountingDict(lru._where)
    lru._where = counting
    merged = len(lru._gens[0]) + len(lru._gens[1])
    counting.writes = 0
    lru.age()
    # only the old-oldest generation's keys are renumbered; with the old
    # list-shifting implementation this would be >= population
    assert counting.writes <= merged
    assert counting.writes < population
    lru.check_invariants()


def test_age_write_count_independent_of_other_generations():
    """Same merged-generation size, 10x population: identical age cost."""

    def age_writes(population: int) -> int:
        lru = MultiGenLru(population * 2, num_generations=4)
        for i in range(population):
            lru.insert(i)
        # push everything out of the two oldest generations, then age with
        # empty oldest pair: the merge itself is O(0) regardless of size
        for _ in range(lru.num_generations):
            lru.age()
        for i in range(population):
            lru.touch(i)
        counting = WriteCountingDict(lru._where)
        lru._where = counting
        counting.writes = 0
        lru.age()
        return counting.writes

    assert age_writes(100) == age_writes(1000) == 0
