"""Unit tests for the DRAM page cache."""

import pytest

from repro.fscommon.pagecache import PageCache
from repro.sim.clock import SimClock

PAGE = 4096


@pytest.fixture
def cache_env():
    clock = SimClock()
    written = []

    def writeback(ino, fb, data):
        written.append((ino, fb, data))

    cache = PageCache(clock, capacity_pages=4, page_size=PAGE, writeback=writeback)
    return cache, written, clock


def page(tag: int) -> bytes:
    return bytes([tag]) * PAGE


class TestLookup:
    def test_miss(self, cache_env):
        cache, _, _ = cache_env
        assert cache.get(1, 0) is None
        assert cache.stats.get("miss") == 1

    def test_hit(self, cache_env):
        cache, _, _ = cache_env
        cache.put(1, 0, page(7), dirty=False)
        assert cache.get(1, 0) == page(7)
        assert cache.stats.get("hit") == 1

    def test_hit_charges_time(self, cache_env):
        cache, _, clock = cache_env
        cache.put(1, 0, page(7), dirty=False)
        t0 = clock.now_ns
        cache.get(1, 0)
        assert clock.now_ns > t0

    def test_wrong_size_rejected(self, cache_env):
        cache, _, _ = cache_env
        with pytest.raises(ValueError):
            cache.put(1, 0, b"tiny", dirty=False)

    def test_hit_ratio(self, cache_env):
        cache, _, _ = cache_env
        cache.put(1, 0, page(1), dirty=False)
        cache.get(1, 0)
        cache.get(1, 1)
        assert cache.hit_ratio() == pytest.approx(0.5)


class TestEviction:
    def test_lru_eviction_order(self, cache_env):
        cache, _, _ = cache_env
        for fb in range(4):
            cache.put(1, fb, page(fb), dirty=False)
        cache.get(1, 0)  # freshen block 0
        cache.put(1, 4, page(4), dirty=False)  # evicts block 1 (oldest)
        assert cache.contains(1, 0)
        assert not cache.contains(1, 1)

    def test_dirty_eviction_writes_back(self, cache_env):
        cache, written, _ = cache_env
        for fb in range(5):
            cache.put(1, fb, page(fb), dirty=True)
        assert written == [(1, 0, page(0))]

    def test_clean_eviction_silent(self, cache_env):
        cache, written, _ = cache_env
        for fb in range(5):
            cache.put(1, fb, page(fb), dirty=False)
        assert written == []

    def test_capacity_respected(self, cache_env):
        cache, _, _ = cache_env
        for fb in range(10):
            cache.put(1, fb, page(fb), dirty=False)
        assert cache.cached_pages == 4


class TestFlush:
    def test_flush_inode(self, cache_env):
        cache, written, _ = cache_env
        cache.put(1, 0, page(1), dirty=True)
        cache.put(2, 0, page(2), dirty=True)
        flushed = cache.flush_inode(1)
        assert flushed == 1
        assert written == [(1, 0, page(1))]
        assert cache.dirty_pages == 1  # ino 2 still dirty

    def test_flush_all(self, cache_env):
        cache, written, _ = cache_env
        cache.put(1, 0, page(1), dirty=True)
        cache.put(2, 0, page(2), dirty=True)
        assert cache.flush_all() == 2
        assert cache.dirty_pages == 0

    def test_flush_idempotent(self, cache_env):
        cache, written, _ = cache_env
        cache.put(1, 0, page(1), dirty=True)
        cache.flush_inode(1)
        cache.flush_inode(1)
        assert len(written) == 1

    def test_overwrite_keeps_dirty(self, cache_env):
        cache, _, _ = cache_env
        cache.put(1, 0, page(1), dirty=True)
        cache.put(1, 0, page(2), dirty=False)
        assert cache.dirty_pages == 1
        assert cache.get(1, 0) == page(2)


class TestInvalidation:
    def test_invalidate_inode(self, cache_env):
        cache, _, _ = cache_env
        cache.put(1, 0, page(1), dirty=True)
        cache.put(2, 0, page(2), dirty=False)
        cache.invalidate_inode(1)
        assert not cache.contains(1, 0)
        assert cache.contains(2, 0)

    def test_invalidate_range(self, cache_env):
        cache, _, _ = cache_env
        for fb in range(4):
            cache.put(1, fb, page(fb), dirty=False)
        cache.invalidate_range(1, 1, 2)
        assert cache.contains(1, 0)
        assert not cache.contains(1, 1)
        assert not cache.contains(1, 2)
        assert cache.contains(1, 3)

    def test_invalidate_from(self, cache_env):
        cache, _, _ = cache_env
        for fb in range(4):
            cache.put(1, fb, page(fb), dirty=False)
        cache.invalidate_from(1, 2)
        assert cache.contains(1, 1)
        assert not cache.contains(1, 3)

    def test_drop_clean_drops_everything(self, cache_env):
        cache, _, _ = cache_env
        cache.put(1, 0, page(1), dirty=True)
        cache.drop_clean()
        assert cache.cached_pages == 0


class TestBatchHelpers:
    def test_dirty_items_sorted(self, cache_env):
        cache, _, _ = cache_env
        cache.put(1, 3, page(3), dirty=True)
        cache.put(1, 1, page(1), dirty=True)
        cache.put(1, 2, page(2), dirty=False)
        assert [fb for fb, _ in cache.dirty_items(1)] == [1, 3]

    def test_mark_clean(self, cache_env):
        cache, _, _ = cache_env
        cache.put(1, 0, page(0), dirty=True)
        cache.put(1, 1, page(1), dirty=True)
        cache.mark_clean(1, [0])
        assert [fb for fb, _ in cache.dirty_items(1)] == [1]
