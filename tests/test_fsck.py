"""The fsck consistency checkers: clean systems pass, corruption is found."""

import pytest

from repro.core.policy import MigrationOrder
from repro.tools.fsck import check_mux, check_native_fs, report

BS = 4096


class TestNativeFsck:
    def test_fresh_fs_clean(self, any_fs):
        assert check_native_fs(any_fs) == []

    def test_busy_fs_clean(self, any_fs):
        any_fs.mkdir("/d")
        for i in range(5):
            handle = any_fs.create(f"/d/f{i}")
            any_fs.write(handle, 0, bytes((i + 1) * BS))
            any_fs.write(handle, 10 * BS, b"sparse tail")
            any_fs.fsync(handle)
            any_fs.close(handle)
        any_fs.unlink("/d/f0")
        any_fs.rename("/d/f1", "/d/g1")
        assert check_native_fs(any_fs) == []

    def test_after_truncate_and_punch(self, any_fs):
        handle = any_fs.create("/f")
        any_fs.write(handle, 0, bytes(16 * BS))
        any_fs.fsync(handle)
        any_fs.punch_hole(handle, 4 * BS, 4 * BS)
        any_fs.truncate(handle, 6 * BS)
        any_fs.fsync(handle)
        any_fs.close(handle)
        assert check_native_fs(any_fs) == []

    def test_after_crash_recovery(self, ext4):
        handle = ext4.create("/f")
        ext4.write(handle, 0, bytes(8 * BS))
        ext4.fsync(handle)
        ext4.crash()
        ext4.recover()
        assert check_native_fs(ext4) == []

    def test_detects_leaked_block(self, ext4):
        ext4.allocator.alloc_block()  # allocated, owned by nobody
        problems = check_native_fs(ext4)
        assert any("leaked" in p for p in problems)

    def test_detects_double_ownership(self, ext4):
        h1 = ext4.create("/a")
        ext4.write(h1, 0, bytes(BS))
        ext4.fsync(h1)
        inode_a = ext4.inodes.get(h1.ino)
        block = inode_a.blockmap.lookup(0)
        h2 = ext4.create("/b")
        inode_b = ext4.inodes.get(h2.ino)
        inode_b.blockmap.map_range(0, 1, block)  # corrupt: same device block
        inode_b.allocated_blocks += 1
        inode_b.size = BS
        problems = check_native_fs(ext4)
        assert any("owned by both" in p for p in problems)

    def test_detects_dangling_dirent(self, any_fs):
        any_fs.write_file("/f", b"")
        root = any_fs._root
        root.entries["ghost"] = 9999
        problems = check_native_fs(any_fs)
        assert any("dangling" in p for p in problems)

    def test_detects_blocks_past_eof(self, ext4):
        handle = ext4.create("/f")
        ext4.write(handle, 0, bytes(4 * BS))
        ext4.fsync(handle)
        inode = ext4.inodes.get(handle.ino)
        inode.size = BS  # corrupt the size without punching
        problems = check_native_fs(ext4)
        assert any("beyond EOF" in p for p in problems)

    def test_report_formatting(self, ext4):
        assert report([], "ext4") == "ext4: clean"
        text = report(["bad thing"], "ext4")
        assert "1 problem" in text
        assert "bad thing" in text


class TestMuxFsck:
    def test_fresh_stack_clean(self, stack):
        assert check_mux(stack.mux) == []

    def test_busy_stack_clean(self, stack):
        mux = stack.mux
        mux.mkdir("/d")
        handle = mux.create("/d/data")
        mux.write(handle, 0, bytes(32 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 8, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 8, 8, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        mux.read(handle, 0, 32 * BS)
        mux.fsync(handle)
        assert check_mux(stack.mux) == []
        mux.close(handle)

    def test_clean_after_policy_maintenance(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        for i in range(6):
            handle = mux.create(f"/f{i}")
            mux.write(handle, 0, bytes([i]) * (2 * 1024 * 1024))
            mux.close(handle)
            mux.maintain()
        assert check_mux(mux) == []
        for fs in stack.filesystems.values():
            assert check_native_fs(fs) == []

    def test_detects_blt_pointing_at_missing_data(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(4 * BS))
        inode = mux.ns.get(handle.ino)
        # corrupt: claim blocks live on the hdd tier where nothing exists
        hdd_id = stack.tier_id("hdd")
        inode.blt.map_range(0, 2, hdd_id)
        problems = check_mux(mux)
        assert problems
        mux.close(handle)

    def test_detects_stuck_migration_flag(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(BS))
        mux.ns.get(handle.ino).migration_active = True
        problems = check_mux(mux, deep=False)
        assert any("migration flag" in p for p in problems)
        mux.close(handle)

    def test_detects_unknown_tier_in_blt(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(BS))
        mux.ns.get(handle.ino).blt.map_range(5, 1, 99)
        problems = check_mux(mux, deep=False)
        assert any("unknown tier" in p for p in problems)
        mux.close(handle)
