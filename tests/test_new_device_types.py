"""New device types joining the hierarchy (the paper's §1 motivation)."""

import pytest

from repro.core.policy import MigrationOrder
from repro.devices.cxl import ARCHIVAL, CXL_SSD, ArchivalDevice, CxlSsd
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.stack import build_stack
from repro.tools.fsck import check_mux, check_native_fs

MIB = 1024 * 1024
BS = 4096


@pytest.fixture
def five_tier():
    stack = build_stack(
        capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB},
        enable_cache=False,
    )
    cxl_dev = CxlSsd("cxl0", 64 * MIB, stack.clock)
    cxl_fs = NovaFileSystem("nova-cxl", cxl_dev, stack.clock)
    stack.vfs.mount("/tiers/cxl", cxl_fs)
    cxl = stack.mux.add_tier("cxl", cxl_fs, "/tiers/cxl", CXL_SSD, rank=1)
    stack.tier_ids["cxl"] = cxl.tier_id

    cold_dev = ArchivalDevice("glass0", 256 * MIB, stack.clock)
    cold_fs = Ext4FileSystem("ext4-cold", cold_dev, stack.clock)
    stack.vfs.mount("/tiers/cold", cold_fs)
    cold = stack.mux.add_tier("cold", cold_fs, "/tiers/cold", ARCHIVAL, rank=9)
    stack.tier_ids["cold"] = cold.tier_id
    return stack


class TestCxlDevice:
    def test_nova_runs_on_cxl_unchanged(self, clock):
        cxl = CxlSsd("c0", 32 * MIB, clock)
        nova = NovaFileSystem("nova-cxl", cxl, clock)
        nova.write_file("/f", b"byte addressable flash")
        assert nova.read_file("/f") == b"byte addressable flash"
        assert check_native_fs(nova) == []

    def test_cxl_slower_than_pm_faster_than_archival(self, clock, pm):
        cxl = CxlSsd("c0", 32 * MIB, clock)
        t0 = clock.now_ns
        pm.load(0, 64)
        pm_cost = clock.now_ns - t0
        t0 = clock.now_ns
        cxl.load(0, 64)
        cxl_cost = clock.now_ns - t0
        cold = ArchivalDevice("g0", 32 * MIB, clock)
        t0 = clock.now_ns
        cold.read_blocks(0)
        cold_cost = clock.now_ns - t0
        assert pm_cost < cxl_cost < cold_cost

    def test_flush_semantics_preserved(self, clock):
        cxl = CxlSsd("c0", 32 * MIB, clock)
        cxl.store(0, b"dirty")
        assert cxl.unflushed_lines == 1
        cxl.flush_range(0, 5)
        assert cxl.unflushed_lines == 0


class TestFiveTierHierarchy:
    def test_all_tiers_registered(self, five_tier):
        assert len(five_tier.mux.registry) == 5

    def test_every_pair_migratable(self, five_tier):
        mux = five_tier.mux
        ids = mux.tier_ids()
        assert len(ids) == 5
        for src in ids:
            for dst in ids:
                assert mux.engine.supports(src, dst) == (src != dst)

    def test_data_flows_through_all_five(self, five_tier):
        stack = five_tier
        mux = stack.mux
        handle = mux.create("/f")
        payload = bytes(range(256)) * 16 * 5  # 20 KiB -> 5 blocks
        mux.write(handle, 0, payload)
        order = ["pm", "ssd", "cxl", "hdd", "cold"]
        for i, name in enumerate(order[1:], start=1):
            mux.engine.migrate_now(
                MigrationOrder(
                    handle.ino,
                    i,
                    1,
                    stack.tier_id("pm"),
                    stack.tier_id(name),
                )
            )
        inode = mux.ns.get(handle.ino)
        assert len(inode.blt.tiers_used()) == 5
        assert mux.read(handle, 0, len(payload)) == payload
        assert check_mux(mux) == []
        mux.close(handle)

    def test_archive_tier_charged_realistically(self, five_tier):
        stack = five_tier
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 1, stack.tier_id("pm"), stack.tier_id("cold"))
        )
        stack.filesystems["hdd"]  # unrelated
        cold_fs, _ = stack.vfs.resolve("/tiers/cold")
        cold_fs.page_cache.drop_clean()
        t0 = stack.clock.now_ns
        mux.read(handle, 0, 1)
        assert stack.clock.now_ns - t0 > 100_000_000  # media fetch: >100 ms
        mux.close(handle)

    def test_fsck_clean_everywhere(self, five_tier):
        stack = five_tier
        mux = stack.mux
        mux.write_file("/a", bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(
                mux.ns.resolve("/a").ino, 0, 4,
                stack.tier_id("pm"), stack.tier_id("cxl"),
            )
        )
        assert check_mux(mux) == []
        for mount in ("/tiers/pm", "/tiers/cxl", "/tiers/cold"):
            fs, _ = stack.vfs.resolve(mount)
            assert check_native_fs(fs) == []
