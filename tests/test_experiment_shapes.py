"""Shape assertions for the paper's headline claims, at tiny scale.

These run the same experiment code as the benchmark suite but with small
workloads, asserting only the *qualitative* results the paper reports:
who wins, which pairs are supported, which overheads are positive.
Magnitudes are recorded by the benches and EXPERIMENTS.md, not here.
"""

import pytest

from repro.bench.experiments import (
    TIERS,
    experiment_fig3a,
    experiment_fig3b,
)


@pytest.fixture(scope="module")
def fig3a():
    return experiment_fig3a(file_mib=4)


@pytest.fixture(scope="module")
def fig3b():
    return experiment_fig3b(total_mib=4, span_mib=8)


class TestFig3aShape:
    def test_mux_supports_all_six_pairs(self, fig3a):
        assert fig3a.mux_supported_pairs == 6

    def test_strata_supports_exactly_two(self, fig3a):
        assert fig3a.strata_supported_pairs == 2
        assert set(fig3a.strata) == {("pm", "ssd"), ("pm", "hdd")}

    def test_mux_faster_on_shared_pairs(self, fig3a):
        for pair in fig3a.strata:
            assert fig3a.mux[pair] > fig3a.strata[pair], pair

    def test_pm_ssd_speedup_direction(self, fig3a):
        """Paper: 2.59x; we require >1.3x (same story, simulator scale)."""
        assert fig3a.speedup_pm_ssd() > 1.3

    def test_throughputs_positive(self, fig3a):
        for value in list(fig3a.mux.values()) + list(fig3a.strata.values()):
            assert value > 0

    def test_fast_destinations_faster(self, fig3a):
        """Migrating into PM beats migrating into HDD from the same source."""
        assert fig3a.mux[("ssd", "pm")] > fig3a.mux[("ssd", "hdd")]


class TestFig3bShape:
    def test_mux_wins_every_device(self, fig3b):
        for tier in TIERS:
            assert fig3b.speedup(tier) > 1.0, tier

    def test_device_ordering_preserved(self, fig3b):
        """PM > SSD > HDD throughput for both systems."""
        for series in (fig3b.mux_mb_s, fig3b.strata_mb_s):
            assert series["pm"] > series["ssd"] > series["hdd"]


class TestOverheadShape:
    @pytest.fixture(scope="class")
    def reads(self):
        from repro.bench.experiments import experiment_read_overhead

        return experiment_read_overhead(iterations=150)

    def test_read_overhead_positive_everywhere(self, reads):
        for tier in TIERS:
            assert reads.overhead_pct(tier) > 0, tier

    def test_hdd_overhead_smallest(self, reads):
        assert reads.overhead_pct("hdd") < reads.overhead_pct("pm")
        assert reads.overhead_pct("hdd") < 25  # paper: 6.6%

    def test_native_latency_ordering(self, reads):
        assert reads.native_us["pm"] < reads.native_us["ssd"] < reads.native_us["hdd"]
