"""SCM cache manager (§2.5): DAX cache file, MGLRU replacement, coherence."""

import pytest

from repro.core.cache import CACHE_FILE, ScmCacheManager
from repro.core.policy import MigrationOrder
from repro.errors import ReproError

BS = 4096


@pytest.fixture
def cache(nova, clock):
    return ScmCacheManager(clock, nova, capacity_blocks=8, block_size=BS)


class TestCacheFile:
    def test_cache_file_created_and_preallocated(self, nova, clock):
        ScmCacheManager(clock, nova, capacity_blocks=16, block_size=BS)
        st = nova.getattr(CACHE_FILE)
        assert st.size == 16 * BS
        assert st.blocks == 16 * (BS // 512)  # fully materialized, no holes

    def test_requires_dax_fs(self, xfs, clock):
        with pytest.raises(ReproError):
            ScmCacheManager(clock, xfs, capacity_blocks=4, block_size=BS)

    def test_recreated_on_rebuild(self, nova, clock):
        ScmCacheManager(clock, nova, capacity_blocks=4, block_size=BS)
        ScmCacheManager(clock, nova, capacity_blocks=4, block_size=BS)
        assert nova.getattr(CACHE_FILE).size == 4 * BS


class TestGetPut:
    def test_miss_then_hit(self, cache):
        assert cache.get(1, 0) is None
        cache.put(1, 0, b"a" * BS)
        assert cache.get(1, 0) == b"a" * BS
        assert cache.stats.get("hit") == 1
        assert cache.stats.get("miss") == 1

    def test_update_in_place(self, cache):
        cache.put(1, 0, b"a" * BS)
        cache.put(1, 0, b"b" * BS)
        assert cache.get(1, 0) == b"b" * BS
        assert cache.cached_blocks == 1

    def test_whole_blocks_only(self, cache):
        with pytest.raises(ValueError):
            cache.put(1, 0, b"small")

    def test_distinct_keys(self, cache):
        cache.put(1, 0, b"a" * BS)
        cache.put(2, 0, b"b" * BS)
        cache.put(1, 1, b"c" * BS)
        assert cache.get(1, 0) == b"a" * BS
        assert cache.get(2, 0) == b"b" * BS
        assert cache.get(1, 1) == b"c" * BS

    def test_data_stored_on_pm_device(self, cache, pm):
        writes_before = pm.stats.bytes_written
        cache.put(1, 0, b"z" * BS)
        assert pm.stats.bytes_written >= writes_before + BS

    def test_hit_charges_pm_load(self, cache, pm, clock):
        cache.put(1, 0, b"z" * BS)
        reads_before = pm.stats.read_ops
        cache.get(1, 0)
        assert pm.stats.read_ops > reads_before


class TestEviction:
    def test_capacity_respected(self, cache):
        for fb in range(20):
            cache.put(1, fb, bytes([fb]) * BS)
        assert cache.cached_blocks == 8
        cache.check_invariants()

    def test_slots_recycled(self, cache):
        for fb in range(30):
            cache.put(1, fb, bytes([fb % 251]) * BS)
        cache.check_invariants()
        assert cache.stats.get("evict") == 22

    def test_recently_used_survives(self, cache):
        for fb in range(8):
            cache.put(1, fb, bytes([fb]) * BS)
        cache.get(1, 0)  # freshen
        for fb in range(8, 12):
            cache.put(1, fb, bytes([fb]) * BS)
        assert cache.get(1, 0) is not None


class TestInvalidation:
    def test_invalidate_block(self, cache):
        cache.put(1, 0, b"a" * BS)
        assert cache.invalidate(1, 0) is True
        assert cache.get(1, 0) is None
        assert cache.invalidate(1, 0) is False

    def test_invalidate_file(self, cache):
        for fb in range(4):
            cache.put(1, fb, bytes(BS))
        cache.put(2, 0, bytes(BS))
        assert cache.invalidate_file(1) == 4
        assert cache.cached_blocks == 1
        cache.check_invariants()


class TestCacheThroughMux:
    def test_slow_tier_reads_populate_cache(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 8, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        assert mux.cache is not None
        mux.read(handle, 0, 8 * BS)
        assert mux.cache.cached_blocks == 8
        mux.close(handle)

    def test_cached_reads_skip_slow_device(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 8, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        mux.read(handle, 0, 8 * BS)  # populate
        hdd_reads = stack.devices["hdd"].stats.read_ops
        mux.read(handle, 0, 8 * BS)  # hit
        assert stack.devices["hdd"].stats.read_ops == hdd_reads
        mux.close(handle)

    def test_cached_read_faster_than_hdd_read(self, stack):
        mux = stack.mux
        clock = stack.clock
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 1, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        t0 = clock.now_ns
        mux.read(handle, 0, BS)
        cold = clock.now_ns - t0
        t0 = clock.now_ns
        mux.read(handle, 0, BS)
        warm = clock.now_ns - t0
        # the "cold" read may itself hit ext4's DRAM page cache (migration
        # just wrote those pages), so only a modest factor is guaranteed
        assert warm < cold / 2
        mux.close(handle)

    def test_pm_tier_reads_not_cached(self, stack):
        """Caching PM-resident data in a PM cache is pointless (§2.5)."""
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(4 * BS))  # lands on pm
        mux.read(handle, 0, 4 * BS)
        assert mux.cache.cached_blocks == 0
        mux.close(handle)

    def test_write_invalidates_cache(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(2 * BS))
        hdd_id = stack.tier_id("hdd")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 2, stack.tier_id("pm"), hdd_id)
        )
        mux.read(handle, 0, 2 * BS)  # cache both blocks
        # partial write updates block 0 on hdd; the cache copy must die
        mux.write(handle, 10, b"FRESH")
        data = mux.read(handle, 0, 16)
        assert data[10:15] == b"FRESH"
        mux.close(handle)

    def test_single_tier_stack_has_no_cache(self):
        from repro.stack import build_stack

        stack = build_stack(tiers=["hdd"])
        assert stack.mux.cache is None

    def test_migration_invalidates_cache(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(2 * BS))
        hdd_id = stack.tier_id("hdd")
        ssd_id = stack.tier_id("ssd")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 2, stack.tier_id("pm"), hdd_id)
        )
        mux.read(handle, 0, 2 * BS)  # cached from hdd
        mux.engine.migrate_now(MigrationOrder(handle.ino, 0, 2, hdd_id, ssd_id))
        assert mux.cache.cached_blocks == 0
        mux.close(handle)
