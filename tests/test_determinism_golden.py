"""Golden determinism tests for the batched (run-level) data path.

The PR-1 span batching rewired *how bytes move* (one device access per
run, one copy into the output buffer) but must not change *what the
timing model charges*.  These tests pin complete simulated fingerprints
— final ``clock.now_ns``, per-device :class:`DeviceStats` snapshots and
SCM-cache hit/miss counters — of two fixed workloads to golden values
recorded when the scalar per-block path was still in place.

The numbers are simulated, so they are machine-independent: any diff
here means a data-path change altered the timing model (or charge
order/granularity) and is a regression, not noise.  If a PR changes the
timing model *on purpose*, regenerate the goldens and say so in the
commit message.
"""

from repro.bench.harness import build_strata
from repro.bench.macro import fileserver
from repro.core.policy import MigrationOrder
from repro.stack import build_stack

# Regenerated for the parallel I/O engine: split reads/writes/fsyncs now
# overlap across tiers, so only now_ns moved (39077547 -> 38739094); every
# per-device counter and the cache counters are bit-identical, confirming
# the engine changed time accounting, not the op sequence.
MUX_GOLDEN = {
    "now_ns": 38739094,
    "devices": {
        "hdd": {
            "read_ops": 0,
            "write_ops": 7,
            "flush_ops": 0,
            "bytes_read": 0,
            "bytes_written": 548864,
            "busy_ns": 32670181,
            "seeks": 5,
        },
        "pm": {
            "read_ops": 843,
            "write_ops": 469,
            "flush_ops": 651,
            "bytes_read": 3452928,
            "bytes_written": 18430760,
            "busy_ns": 5487296,
            "seeks": 0,
        },
        "ssd": {
            "read_ops": 0,
            "write_ops": 6,
            "flush_ops": 2,
            "bytes_read": 0,
            "bytes_written": 282624,
            "busy_ns": 236640,
            "seeks": 0,
        },
    },
    "cache": {"hit": 427, "miss": 194},
}

STRATA_GOLDEN = {
    "now_ns": 3981980,
    "devices": {
        "hdd": {
            "read_ops": 0,
            "write_ops": 0,
            "flush_ops": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "busy_ns": 0,
            "seeks": 0,
        },
        "pm": {
            "read_ops": 272,
            "write_ops": 2213,
            "flush_ops": 2683,
            "bytes_read": 1114112,
            "bytes_written": 7028288,
            "busy_ns": 2264080,
            "seeks": 0,
        },
        "ssd": {
            "read_ops": 0,
            "write_ops": 0,
            "flush_ops": 0,
            "bytes_read": 0,
            "bytes_written": 0,
            "busy_ns": 0,
            "seeks": 0,
        },
    },
}


def run_mux_workload() -> dict:
    """Fixed mux workload: patterned writes, migration to the slow tiers,
    cached re-reads (miss then hit), an unaligned overwrite (cache
    invalidation), truncate and fsync."""
    stack = build_stack()
    mux = stack.mux
    mux.mkdir("/g")
    h = mux.create("/g/a")
    blob = bytes(range(256)) * 64  # 16 KiB pattern
    for i in range(64):  # 1 MiB file
        mux.write(h, i * 16384, blob)
    # push the body to the slow tiers so reads split across sub-requests
    # and the SCM cache engages (hdd/ssd are cacheable, pm is not)
    mux.engine.migrate_now(
        MigrationOrder(h.ino, 0, 128, stack.tier_id("pm"), stack.tier_id("hdd"))
    )
    mux.engine.migrate_now(
        MigrationOrder(h.ino, 128, 64, stack.tier_id("pm"), stack.tier_id("ssd"))
    )
    for _ in range(3):  # re-reads: cache misses, then hit runs
        mux.read(h, 0, 64 * 16384)
    mux.write(h, 5000, b"x" * 123456)  # unaligned overwrite: invalidations
    mux.read(h, 4096, 300000)
    mux.truncate(h, 700000)
    mux.fsync(h)
    mux.close(h)
    return {
        "now_ns": stack.clock.now_ns,
        "devices": {
            name: dev.stats.snapshot() for name, dev in sorted(stack.devices.items())
        },
        "cache": {
            "hit": stack.mux.cache.stats.get("hit"),
            "miss": stack.mux.cache.stats.get("miss"),
        },
    }


def run_strata_workload() -> dict:
    """Fixed Strata stack workload: a small deterministic fileserver mix."""
    strata = build_strata()
    fileserver(strata.fs, strata.clock, files=4, operations=60)
    return {
        "now_ns": strata.clock.now_ns,
        "devices": {
            name: dev.stats.snapshot() for name, dev in sorted(strata.devices.items())
        },
    }


class TestGoldenFingerprints:
    def test_mux_stack_matches_golden(self):
        observed = run_mux_workload()
        assert observed["now_ns"] == MUX_GOLDEN["now_ns"]
        assert observed["devices"] == MUX_GOLDEN["devices"]
        assert observed["cache"] == MUX_GOLDEN["cache"]

    def test_strata_stack_matches_golden(self):
        observed = run_strata_workload()
        assert observed["now_ns"] == STRATA_GOLDEN["now_ns"]
        assert observed["devices"] == STRATA_GOLDEN["devices"]

    def test_mux_workload_repeatable(self):
        assert run_mux_workload() == run_mux_workload()
