"""The merged-namespace contract (§2.1): users see one tree; every Mux
file is backed on at least one tier; tiers hold nothing unexpected."""

import pytest

from repro.bench.macro import fileserver, varmail
from repro.core.policy import MigrationOrder
from repro.vfs import path as vpath

MIB = 1024 * 1024
BS = 4096


def walk_fs(fs, path="/"):
    """All file paths in one native file system (skipping Mux internals)."""
    out = set()
    for name in fs.readdir(path):
        child = vpath.join(path, name)
        if name.startswith(".mux_"):
            continue
        if fs.getattr(child).is_dir:
            out |= walk_fs(fs, child)
        else:
            out.add(child)
    return out


def walk_mux(mux, path="/"):
    out = set()
    for name in mux.readdir(path):
        child = vpath.join(path, name)
        if mux.getattr(child).is_dir:
            out |= walk_mux(mux, child)
        else:
            out.add(child)
    return out


class TestMergedView:
    def test_tiers_hold_only_mux_files(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        fileserver(mux, stack.clock, files=8, operations=60)
        mux.maintain()
        mux_files = walk_mux(mux)
        for fs in stack.filesystems.values():
            assert walk_fs(fs) <= mux_files

    def test_every_mux_file_backed_somewhere(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        varmail(mux, stack.clock, operations=50)
        union = set()
        for fs in stack.filesystems.values():
            union |= walk_fs(fs)
        for path in walk_mux(mux):
            assert path in union, f"{path} has no backing file on any tier"

    def test_same_name_on_multiple_tiers_single_view(self, stack_nocache):
        """§2.1: 'the same file name exists in different file systems' but
        the user sees it exactly once."""
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/split.bin")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 4, 4, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        on_tiers = sum(
            1 for fs in stack.filesystems.values() if "/split.bin" in walk_fs(fs)
        )
        assert on_tiers == 2  # two backing copies (different block ranges)...
        assert mux.readdir("/").count("split.bin") == 1  # ...one user view
        mux.close(handle)

    def test_unlink_cleans_every_tier(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/gone.bin")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 4, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        mux.close(handle)
        mux.unlink("/gone.bin")
        for fs in stack.filesystems.values():
            assert "/gone.bin" not in walk_fs(fs)
