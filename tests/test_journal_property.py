"""Property tests for the write-ahead journal's durability contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.base import Device
from repro.devices.profile import OPTANE_SSD_P4800X
from repro.fscommon.journal import Journal
from repro.sim.clock import SimClock

MIB = 1024 * 1024

records_strategy = st.lists(
    st.lists(
        st.tuples(
            st.sampled_from(["link", "unlink", "set_size", "map_extent"]),
            st.integers(0, 1000),
        ),
        min_size=1,
        max_size=4,
    ),
    min_size=0,
    max_size=12,
)


def fresh_journal():
    device = Device("j", OPTANE_SSD_P4800X, 8 * MIB, SimClock())
    return device, Journal(device, 0, 256)


@settings(max_examples=80, deadline=None)
@given(txns=records_strategy)
def test_recover_returns_every_committed_txn_in_order(txns):
    device, journal = fresh_journal()
    for txn_records in txns:
        txn = journal.begin()
        for kind, value in txn_records:
            txn.add(kind, value=value)
        txn.commit()
    recovered = Journal(device, 0, 256).recover()
    assert len(recovered) == len(txns)
    for expected, got in zip(txns, recovered):
        assert [(k, f["value"]) for k, f in got] == expected


@settings(max_examples=60, deadline=None)
@given(txns=records_strategy, checkpoint_after=st.integers(0, 12))
def test_checkpoint_prefix_then_recover_suffix(txns, checkpoint_after):
    """Checkpointing a prefix must leave exactly the suffix recoverable."""
    device, journal = fresh_journal()
    applied = []
    for index, txn_records in enumerate(txns):
        txn = journal.begin()
        for kind, value in txn_records:
            txn.add(kind, value=value)
        txn.commit()
        if index + 1 == checkpoint_after:
            journal.checkpoint(lambda k, f: applied.append((k, f["value"])))
    # the checkpoint only fired if its trigger index was reached
    cut = checkpoint_after if checkpoint_after <= len(txns) else 0
    recovered = Journal(device, 0, 256).recover()
    assert len(recovered) == len(txns) - cut
    flattened = [item for txn_records in txns[:cut] for item in txn_records]
    assert applied == flattened


@settings(max_examples=60, deadline=None)
@given(txns=records_strategy, torn_bytes=st.integers(1, 4000))
def test_torn_tail_write_never_corrupts_committed_txns(txns, torn_bytes):
    """Garbage after the last commit (a torn in-flight txn) is ignored."""
    device, journal = fresh_journal()
    for txn_records in txns:
        txn = journal.begin()
        for kind, value in txn_records:
            txn.add(kind, value=value)
        txn.commit()
    # simulate a torn transaction: partial header + garbage at the head
    if journal.free_blocks > 1:
        import struct

        frame = bytearray(device.block_size)
        struct.pack_into("<IQI", frame, 0, 0x4A524E4C, 999, torn_bytes)
        device.write_blocks(journal._head, bytes(frame))
    recovered = Journal(device, 0, 256).recover()
    assert len(recovered) == len(txns)
