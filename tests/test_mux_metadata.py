"""Metadata affinity and the collective inode (§2.3)."""

import pytest

from repro.core.metadata import MetadataAffinity
from repro.core.policy import MigrationOrder
from repro.errors import InvalidArgument
from repro.vfs.stat import SINGLE_OWNER_ATTRS

BS = 4096


class TestMetadataAffinity:
    def test_initial_owner(self):
        affinity = MetadataAffinity(initial_tier=2)
        for attr in SINGLE_OWNER_ATTRS:
            assert affinity.owner(attr) == 2

    def test_set_owner(self):
        affinity = MetadataAffinity(0)
        affinity.set_owner("size", 1)
        assert affinity.owner("size") == 1
        assert affinity.owner("mtime") == 0

    def test_unknown_attribute(self):
        affinity = MetadataAffinity(0)
        with pytest.raises(InvalidArgument):
            affinity.owner("blocks")  # aggregated attr has no single owner
        with pytest.raises(InvalidArgument):
            affinity.set_owner("nope", 1)

    def test_owners_snapshot(self):
        affinity = MetadataAffinity(0)
        owners = affinity.owners()
        owners["size"] = 99
        assert affinity.owner("size") == 0

    def test_single_owner_invariant(self):
        affinity = MetadataAffinity(1)
        affinity.check_single_owner()


class TestAffinityThroughMux:
    def test_creation_host_owns_everything(self, stack):
        """§2.3: at creation the host FS is affinitive for all metadata."""
        mux = stack.mux
        mux.create("/f")
        st = mux.getattr("/f")
        owners = st.extra["affinity"]
        pm_id = stack.tier_id("pm")
        assert all(owner == pm_id for owner in owners.values())

    def test_write_moves_mtime_affinity(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        from repro.core.policies import PinnedPolicy

        handle = mux.create("/f")
        mux.policy = PinnedPolicy(stack.tier_id("ssd"))
        mux.write(handle, 0, bytes(BS))
        owners = mux.getattr("/f").extra["affinity"]
        assert owners["mtime"] == stack.tier_id("ssd")
        assert owners["size"] == stack.tier_id("ssd")
        mux.close(handle)

    def test_read_moves_atime_affinity(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(2 * BS))
        hdd_id = stack.tier_id("hdd")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 1, 1, stack.tier_id("pm"), hdd_id)
        )
        mux.read(handle, BS, 10)  # served by the hdd tier
        owners = mux.getattr("/f").extra["affinity"]
        assert owners["atime"] == hdd_id
        mux.close(handle)

    def test_size_owner_is_tier_holding_last_byte(self, stack_nocache):
        """§2.3: the FS storing the last byte owns the logical size."""
        stack = stack_nocache
        mux = stack.mux
        from repro.core.policies import PinnedPolicy

        handle = mux.create("/f")
        mux.write(handle, 0, bytes(BS))
        mux.policy = PinnedPolicy(stack.tier_id("hdd"))
        mux.append(handle, bytes(BS))  # extends on hdd
        owners = mux.getattr("/f").extra["affinity"]
        assert owners["size"] == stack.tier_id("hdd")
        mux.close(handle)


class TestCollectiveInode:
    def test_getattr_served_from_cache_not_tiers(self, stack):
        """§2.3: attributes come from the collective inode, no fan-out."""
        mux = stack.mux
        mux.write_file("/f", b"x" * 100)
        pm_ops = stack.filesystems["pm"].stats.get("getattr")
        for _ in range(10):
            mux.getattr("/f")
        assert stack.filesystems["pm"].stats.get("getattr") == pm_ops

    def test_size_authoritative_across_tiers(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(3 * BS + 17))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 4, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        assert mux.getattr("/f").size == 3 * BS + 17
        mux.close(handle)

    def test_blocks_aggregated_across_tiers(self, stack):
        """§2.3: disk consumption is managed across all related FSes."""
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 4, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        st = mux.getattr("/f")
        assert st.blocks == 8 * (BS // 512)
        mux.close(handle)

    def test_version_counter_exposed(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(BS))
        v0 = mux.getattr("/f").extra["version"]
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 1, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        assert mux.getattr("/f").extra["version"] == v0 + 2  # start + end
        mux.close(handle)

    def test_setattr_updates_collective(self, stack):
        mux = stack.mux
        mux.write_file("/f", b"x")
        st = mux.setattr("/f", mtime=123.0, mode=0o600)
        assert st.mtime == 123.0
        assert st.mode == 0o600
        assert mux.getattr("/f").mtime == 123.0

    def test_mtime_advances_on_write(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        m0 = mux.getattr("/f").mtime
        stack.clock.advance_ns(5_000_000)
        mux.write(handle, 0, b"x")
        assert mux.getattr("/f").mtime > m0
        mux.close(handle)
