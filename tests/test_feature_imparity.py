"""Feature imparity between file systems (§4).

"Oftentimes, even for the same metadata attribute, its semantics can vary
(e.g., FAT records timestamps with a two-second granularity)."

We model a FAT-like file system by giving Ext4's skeleton a 2-second
timestamp granularity and verify (a) the underlying FS really rounds, and
(b) Mux's collective inode keeps full-precision metadata regardless of
which tier holds the data — the collective inode masks the imparity.
"""

import pytest

from repro.devices.hdd import HardDiskDrive
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nfs import network_profile
from repro.sim.clock import SimClock
from repro.stack import build_stack

MIB = 1024 * 1024


class FatLikeFileSystem(Ext4FileSystem):
    """A coarse-clock file system: timestamps round down to 2 seconds."""

    timestamp_granularity = 2.0


@pytest.fixture
def fat(clock, hdd):
    return FatLikeFileSystem("fat", hdd, clock)


class TestCoarseTimestamps:
    def test_times_rounded_down(self, fat, clock):
        clock.charge(3.7)  # t = 3.7 s
        fat.write_file("/f", b"x")
        st = fat.getattr("/f")
        assert st.mtime == 2.0
        assert st.ctime == 2.0

    def test_full_precision_fs_unaffected(self, ext4, clock):
        clock.charge(3.7)
        ext4.write_file("/f", b"x")
        assert ext4.getattr("/f").mtime == pytest.approx(3.7, abs=0.1)

    def test_setattr_also_rounded(self, fat):
        fat.write_file("/f", b"x")
        st = fat.setattr("/f", mtime=5.9)
        assert st.mtime == 4.0

    def test_updates_within_granule_indistinguishable(self, fat, clock):
        handle = fat.create("/f")
        clock.charge(2.0)
        fat.write(handle, 0, b"a")
        first = fat.getattr("/f").mtime
        clock.charge(0.5)  # still inside the same 2 s granule
        fat.write(handle, 0, b"b")
        assert fat.getattr("/f").mtime == first
        fat.close(handle)


class TestMuxMasksImparity:
    @pytest.fixture
    def stack_with_fat(self):
        stack = build_stack(tiers=["pm"], enable_cache=False)
        fat_dev = HardDiskDrive("fat-hdd", 64 * MIB, stack.clock)
        fat_fs = FatLikeFileSystem("fat", fat_dev, stack.clock)
        stack.vfs.mount("/tiers/fat", fat_fs)
        tier = stack.mux.add_tier(
            "fat", fat_fs, "/tiers/fat", network_profile(0.1, 1e9)
        )
        stack.tier_ids["fat"] = tier.tier_id
        return stack, fat_fs

    def test_collective_inode_keeps_precision(self, stack_with_fat):
        from repro.core.policies import PinnedPolicy

        stack, fat_fs = stack_with_fat
        mux = stack.mux
        mux.policy = PinnedPolicy(stack.tier_id("fat"))
        stack.clock.charge(3.7)
        handle = mux.create("/doc")
        mux.write(handle, 0, b"on the coarse tier")
        # the backing FS rounds...
        backing = fat_fs.getattr("/doc")
        assert backing.mtime == 2.0
        # ...but Mux's collective inode reports full precision (§2.3: the
        # collective inode caches the authoritative values)
        assert mux.getattr("/doc").mtime == pytest.approx(3.7, abs=0.1)
        mux.close(handle)
