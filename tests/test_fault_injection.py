"""Unit tests for the deterministic fault-injection substrate.

Covers the injector itself (seeded schedules, transient vs. persistent
latching, torn-prefix materialization, latency spikes, offline rejection)
and its wiring through :func:`repro.stack.build_stack`.
"""

import pytest

from repro.devices.base import Device
from repro.devices.faults import FaultConfig, FaultInjector
from repro.devices.profile import OPTANE_SSD_P4800X
from repro.errors import DeviceIoError, DeviceOffline
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng
from repro.stack import build_stack

MIB = 1024 * 1024


def make_device(config=None, seed=42):
    clock = SimClock()
    device = Device("d0", OPTANE_SSD_P4800X, 16 * MIB, clock)
    if config is not None:
        device.set_fault_injector(FaultInjector("d0", config, DeterministicRng(seed)))
    return device, clock


class TestSchedules:
    def test_same_seed_same_schedule(self):
        """The whole point: a (seed, op sequence) pair replays exactly."""

        def run(seed):
            device, _ = make_device(FaultConfig(write_error_p=0.3), seed=seed)
            outcomes = []
            for i in range(200):
                try:
                    device.write_blocks(i % 64, b"\xaa" * device.block_size)
                    outcomes.append("ok")
                except DeviceIoError:
                    outcomes.append("err")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)  # different seed, different schedule

    def test_fork_is_stable(self):
        """Substreams derive from the label, not the process hash salt."""
        a = DeterministicRng(99).fork("ssd")
        b = DeterministicRng(99).fork("ssd")
        assert [a.random() for _ in range(16)] == [b.random() for _ in range(16)]
        c = DeterministicRng(99).fork("hdd")
        assert [c.random() for _ in range(4)] != [
            DeterministicRng(99).fork("ssd").random() for _ in range(4)
        ]

    def test_no_injector_no_errors(self):
        device, _ = make_device(None)
        for i in range(50):
            device.write_blocks(i, b"\xaa" * device.block_size)
            device.read_blocks(i, 1)


class TestTransientVsPersistent:
    def test_transient_errors_do_not_latch(self):
        device, _ = make_device(
            FaultConfig(write_error_p=1.0, transient_fraction=1.0)
        )
        with pytest.raises(DeviceIoError) as excinfo:
            device.write_blocks(0, b"\xaa" * device.block_size)
        assert excinfo.value.transient
        assert not device.faults._latched_write

    def test_persistent_errors_latch_the_block(self):
        device, _ = make_device(
            FaultConfig(write_error_p=1.0, transient_fraction=0.0)
        )
        with pytest.raises(DeviceIoError) as excinfo:
            device.write_blocks(3, b"\xaa" * device.block_size)
        assert not excinfo.value.transient
        # the defect persists with the error probability turned off: the
        # latch, not the coin flip, is what keeps failing
        device.faults.config = FaultConfig()
        with pytest.raises(DeviceIoError):
            device.write_blocks(3, b"\xbb" * device.block_size)
        device.write_blocks(9, b"\xcc" * device.block_size)  # other blocks fine

    def test_clear_latched_repairs(self):
        device, _ = make_device(FaultConfig())
        device.faults.fail_block(5)
        with pytest.raises(DeviceIoError):
            device.read_blocks(5, 1)
        device.faults.clear_latched()
        device.read_blocks(5, 1)


class TestTornWrites:
    def test_torn_write_materializes_prefix(self):
        device, _ = make_device(FaultConfig(torn_write_p=1.0))
        bs = device.block_size
        payload = b"".join(bytes([i]) * bs for i in range(1, 5))
        with pytest.raises(DeviceIoError) as excinfo:
            device.write_blocks(0, payload)
        assert excinfo.value.transient
        prefix = device.faults.stats.get("torn_writes")
        assert prefix == 1
        # some strict prefix of the four blocks made it to the media,
        # the rest still hold zeroes
        data = device.read_blocks(0, 4)
        written = [data[i * bs : (i + 1) * bs] != bytes(bs) for i in range(4)]
        assert any(written) and not all(written)
        assert written == sorted(written, reverse=True)  # prefix, not holes

    def test_single_block_writes_never_tear(self):
        device, _ = make_device(FaultConfig(torn_write_p=1.0))
        for i in range(30):
            device.write_blocks(i, b"\xaa" * device.block_size)
        assert device.faults.stats.get("torn_writes") == 0


class TestLatencySpikes:
    def test_spike_multiplies_cost(self):
        plain, plain_clock = make_device(None)
        spiky, spiky_clock = make_device(
            FaultConfig(latency_spike_p=1.0, latency_spike_mult=8.0)
        )
        plain.read_blocks(0, 4)
        spiky.read_blocks(0, 4)
        assert spiky_clock.now_ns == 8 * plain_clock.now_ns

    def test_no_spike_no_charge(self):
        plain, plain_clock = make_device(None)
        quiet, quiet_clock = make_device(FaultConfig(latency_spike_p=0.0))
        plain.read_blocks(0, 4)
        quiet.read_blocks(0, 4)
        assert quiet_clock.now_ns == plain_clock.now_ns


class TestOffline:
    def test_offline_rejects_everything(self):
        device, _ = make_device(FaultConfig())
        device.faults.set_offline()
        with pytest.raises(DeviceOffline):
            device.read_blocks(0, 1)
        with pytest.raises(DeviceOffline):
            device.write_blocks(0, b"\xaa" * device.block_size)
        assert device.faults.stats.get("offline_rejections") == 2

    def test_online_restores_service(self):
        device, _ = make_device(FaultConfig())
        device.faults.set_offline()
        device.faults.set_online()
        device.write_blocks(0, b"\xaa" * device.block_size)
        assert device.read_blocks(0, 1) == b"\xaa" * device.block_size


class TestStackWiring:
    def test_build_stack_attaches_injectors(self):
        stack = build_stack(faults={"ssd": FaultConfig(write_error_p=0.1)})
        assert set(stack.injectors) == {"ssd"}
        assert stack.devices["ssd"].faults is stack.injectors["ssd"]
        assert stack.devices["pm"].faults is None
        assert stack.devices["hdd"].faults is None

    def test_unknown_tier_rejected(self):
        from repro.errors import InvalidArgument

        with pytest.raises(InvalidArgument):
            build_stack(faults={"tape": FaultConfig()})

    def test_per_device_streams_independent(self):
        """Faulting hdd too must not perturb ssd's schedule."""

        def ssd_draws(fault_map):
            stack = build_stack(faults=fault_map, fault_seed=11)
            return [stack.injectors["ssd"].rng.random() for _ in range(8)]

        only_ssd = ssd_draws({"ssd": FaultConfig(write_error_p=0.2)})
        both = ssd_draws(
            {
                "hdd": FaultConfig(write_error_p=0.2),
                "ssd": FaultConfig(write_error_p=0.2),
            }
        )
        assert only_ssd == both

    def test_spike_mult_defaults_per_kind(self):
        stack = build_stack(
            faults={
                "pm": FaultConfig(latency_spike_p=0.5),
                "hdd": FaultConfig(latency_spike_p=0.5),
            }
        )
        pm_mult = stack.injectors["pm"].config.latency_spike_mult
        hdd_mult = stack.injectors["hdd"].config.latency_spike_mult
        assert pm_mult < hdd_mult  # PM spikes are mild, HDD seek storms are not

    def test_healthy_stack_charges_nothing_extra(self):
        """A stack with no faults map runs bit-identical to the plain one."""

        def fingerprint(**kwargs):
            stack = build_stack(**kwargs)
            handle = stack.mux.create("/f")
            stack.mux.write(handle, 0, b"\xa5" * 65536)
            stack.mux.fsync(handle)
            stack.mux.read(handle, 0, 65536)
            stack.mux.close(handle)
            return (
                stack.clock.now_ns,
                {n: d.stats.snapshot() for n, d in sorted(stack.devices.items())},
            )

        assert fingerprint() == fingerprint(faults=None)
