"""Behaviour at the edge of capacity: spills, reserves, safe migration
aborts — the paths a production tiered FS must get right."""

import pytest

from repro.core.policies import PinnedPolicy
from repro.core.policy import MigrationOrder
from repro.errors import NoSpace
from repro.stack import build_stack
from repro.tools.fsck import check_mux, check_native_fs

MIB = 1024 * 1024
BS = 4096


@pytest.fixture
def tight_stack():
    """A stack with a tiny PM tier so pressure is easy to create."""
    return build_stack(
        capacities={"pm": 8 * MIB, "ssd": 16 * MIB, "hdd": 64 * MIB},
        enable_cache=False,
    )


def fill_tier(stack, name, path="/ballast"):
    """Write until the named tier refuses more data; returns bytes placed."""
    mux = stack.mux
    mux.policy = PinnedPolicy(stack.tier_id(name))
    handle = mux.create(path)
    written = 0
    chunk = bytes(64 * 1024)
    inode = mux.ns.get(handle.ino)
    tier_id = stack.tier_id(name)
    while True:
        mux.write(handle, written, chunk)
        written += len(chunk)
        if inode.blt.lookup((written - 1) // BS) != tier_id:
            break  # the write spilled: the tier is effectively full
    mux.close(handle)
    return written


class TestWriteSpill:
    def test_spill_preserves_data(self, tight_stack):
        stack = tight_stack
        written = fill_tier(stack, "pm")
        handle = stack.mux.open("/ballast")
        assert stack.mux.getattr("/ballast").size == written
        assert stack.mux.read(handle, written - 16, 16) == bytes(16)
        stack.mux.close(handle)

    def test_spill_goes_down_rank(self, tight_stack):
        stack = tight_stack
        fill_tier(stack, "pm")
        inode = stack.mux.ns.resolve("/ballast")
        tiers = inode.blt.tiers_used()
        assert stack.tier_id("pm") in tiers
        assert stack.tier_id("ssd") in tiers  # spilled to the next rank

    def test_reserve_keeps_headroom(self, tight_stack):
        stack = tight_stack
        fill_tier(stack, "pm")
        # the placement reserve must leave the PM tier some free blocks
        # (COW file systems and the Mux metafile need transient space)
        assert stack.filesystems["pm"].statfs().free_blocks >= 32

    def test_spill_counter(self, tight_stack):
        stack = tight_stack
        fill_tier(stack, "pm")
        # spills happen via placement fallback and/or ENOSPC retries;
        # either way the system kept accepting writes
        assert stack.mux.exists("/ballast")

    def test_consistent_after_pressure(self, tight_stack):
        stack = tight_stack
        fill_tier(stack, "pm")
        assert check_mux(stack.mux) == []
        for fs in stack.filesystems.values():
            assert check_native_fs(fs) == []

    def test_everything_full_raises(self):
        stack = build_stack(
            tiers=["pm"], capacities={"pm": 8 * MIB}, enable_cache=False
        )
        mux = stack.mux
        handle = mux.create("/f")
        with pytest.raises(NoSpace):
            offset = 0
            while True:
                mux.write(handle, offset, bytes(256 * 1024))
                offset += 256 * 1024


class TestMigrationUnderPressure:
    def test_migration_into_full_tier_aborts_safely(self, tight_stack):
        stack = tight_stack
        mux = stack.mux
        fill_tier(stack, "pm")
        # a big file on ssd that cannot possibly fit into what's left of pm
        mux.policy = PinnedPolicy(stack.tier_id("ssd"))
        handle = mux.create("/victim")
        mux.write(handle, 0, bytes(4 * MIB))
        inode = mux.ns.get(handle.ino)
        result = mux.engine.migrate_now(
            MigrationOrder(
                handle.ino,
                0,
                inode.blt.end_block(),
                stack.tier_id("ssd"),
                stack.tier_id("pm"),
            )
        )
        assert result.aborted_no_space
        # nothing lost: data still fully on ssd and readable
        assert inode.blt.blocks_on(stack.tier_id("ssd")) == 4 * MIB // BS
        assert mux.read(handle, 0, 16) == bytes(16)
        assert not inode.migration_active
        mux.close(handle)

    def test_policy_maintenance_survives_pressure(self, tight_stack):
        """plan/migrate cycles at capacity never crash or corrupt."""
        stack = tight_stack
        mux = stack.mux
        from repro.core.policies import LruTieringPolicy

        mux.policy = LruTieringPolicy(high_watermark=0.6, low_watermark=0.4)
        for i in range(8):
            handle = mux.create(f"/f{i}")
            mux.write(handle, 0, bytes([i]) * (1 * MIB))
            mux.close(handle)
            mux.maintain()
        assert check_mux(mux) == []
        for i in range(8):
            assert mux.read_file(f"/f{i}")[:4] == bytes([i]) * 4

    def test_no_space_abort_counted(self, tight_stack):
        stack = tight_stack
        mux = stack.mux
        fill_tier(stack, "pm")
        mux.policy = PinnedPolicy(stack.tier_id("ssd"))
        handle = mux.create("/victim")
        mux.write(handle, 0, bytes(4 * MIB))
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, 1024, stack.tier_id("ssd"), stack.tier_id("pm")
            )
        )
        assert mux.engine.stats.get("skipped_no_space") >= 1
        mux.close(handle)
