"""Unit + property tests for the two Block Lookup Table implementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blt import BlockLookupTable, ByteArrayBlt, ExtentBlt


@pytest.fixture(params=["extent", "bytearray"])
def blt(request) -> BlockLookupTable:
    return ExtentBlt() if request.param == "extent" else ByteArrayBlt()


class TestBltCommon:
    def test_empty(self, blt):
        assert blt.lookup(0) is None
        assert blt.tiers_used() == []
        assert blt.mapped_blocks() == 0
        assert blt.end_block() == 0

    def test_map_lookup(self, blt):
        blt.map_range(4, 8, 1)
        assert blt.lookup(4) == 1
        assert blt.lookup(11) == 1
        assert blt.lookup(12) is None
        assert blt.lookup(3) is None

    def test_remap_to_other_tier(self, blt):
        blt.map_range(0, 10, 0)
        blt.map_range(2, 3, 2)
        assert blt.lookup(1) == 0
        assert blt.lookup(2) == 2
        assert blt.lookup(4) == 2
        assert blt.lookup(5) == 0

    def test_unmap(self, blt):
        blt.map_range(0, 6, 1)
        blt.unmap_range(2, 2)
        assert blt.lookup(1) == 1
        assert blt.lookup(2) is None
        assert blt.lookup(3) is None
        assert blt.lookup(4) == 1

    def test_blocks_on(self, blt):
        blt.map_range(0, 4, 0)
        blt.map_range(4, 6, 1)
        assert blt.blocks_on(0) == 4
        assert blt.blocks_on(1) == 6
        assert blt.blocks_on(9) == 0

    def test_blocks_on_after_remap(self, blt):
        blt.map_range(0, 10, 0)
        blt.map_range(0, 10, 1)
        assert blt.blocks_on(0) == 0
        assert blt.blocks_on(1) == 10

    def test_tiers_used(self, blt):
        blt.map_range(0, 1, 2)
        blt.map_range(1, 1, 0)
        assert blt.tiers_used() == [0, 2]

    def test_runs_decomposition(self, blt):
        blt.map_range(2, 2, 0)
        blt.map_range(6, 2, 1)
        assert list(blt.runs(0, 10)) == [
            (0, 2, None),
            (2, 2, 0),
            (4, 2, None),
            (6, 2, 1),
            (8, 2, None),
        ]

    def test_end_block(self, blt):
        blt.map_range(7, 3, 0)
        assert blt.end_block() == 10

    def test_lookup_cost_positive(self, blt):
        blt.map_range(0, 4, 0)
        assert blt.lookup_cost_ns(1, 1) > 0

    def test_memory_accounting(self, blt):
        blt.map_range(0, 1000, 0)
        assert blt.memory_bytes() > 0


class TestExtentBltSpecific:
    def test_coalescing_keeps_tree_small(self):
        blt = ExtentBlt()
        for i in range(100):
            blt.map_range(i, 1, 0)
        assert blt.memory_bytes() == 32  # one extent

    def test_invariants(self):
        blt = ExtentBlt()
        blt.map_range(0, 10, 0)
        blt.map_range(5, 10, 1)
        blt.unmap_range(7, 2)
        blt.check_invariants()

    def test_fragmented_lookup_costs_more(self):
        fragmented = ExtentBlt()
        for i in range(0, 64, 2):
            fragmented.map_range(i, 1, i % 3)
        contiguous = ExtentBlt()
        contiguous.map_range(0, 64, 0)
        frag_runs = len(list(fragmented.runs(0, 64)))
        assert fragmented.lookup_cost_ns(frag_runs, 64) > contiguous.lookup_cost_ns(
            1, 64
        )


class TestByteArrayBltSpecific:
    def test_space_one_byte_per_block(self):
        blt = ByteArrayBlt()
        blt.map_range(0, 1000, 0)
        assert blt.memory_bytes() == 1000

    def test_paper_space_overhead_claim(self):
        """§2.3: one byte per 4 KB -> less than 0.025% space overhead."""
        blt = ByteArrayBlt()
        blocks = 10_000
        blt.map_range(0, blocks, 0)
        overhead = blt.memory_bytes() / (blocks * 4096)
        assert overhead < 0.00025

    def test_tier_id_range_enforced(self):
        blt = ByteArrayBlt()
        with pytest.raises(ValueError):
            blt.map_range(0, 1, 255)

    def test_per_block_cost_scales(self):
        blt = ByteArrayBlt()
        assert blt.lookup_cost_ns(1, 100) > blt.lookup_cost_ns(1, 1)


# ---------------------------------------------------------------------------
# property: both implementations agree with each other and a dict model
# ---------------------------------------------------------------------------

blt_ops = st.lists(
    st.tuples(
        st.sampled_from(["map", "unmap"]),
        st.integers(0, 150),
        st.integers(1, 40),
        st.integers(0, 3),
    ),
    max_size=40,
)


@settings(max_examples=150, deadline=None)
@given(ops=blt_ops)
def test_blt_implementations_equivalent(ops):
    extent = ExtentBlt()
    flat = ByteArrayBlt()
    model = {}
    for op, start, count, tier in ops:
        if op == "map":
            extent.map_range(start, count, tier)
            flat.map_range(start, count, tier)
            for i in range(count):
                model[start + i] = tier
        else:
            extent.unmap_range(start, count)
            flat.unmap_range(start, count)
            for i in range(count):
                model.pop(start + i, None)
    extent.check_invariants()
    for block in range(200):
        assert extent.lookup(block) == model.get(block)
        assert flat.lookup(block) == model.get(block)
    assert extent.mapped_blocks() == flat.mapped_blocks() == len(model)
    assert extent.tiers_used() == flat.tiers_used()
    for tier in range(4):
        assert extent.blocks_on(tier) == flat.blocks_on(tier)
    assert list(extent.runs(0, 200)) == list(flat.runs(0, 200))
