"""Async submit/complete ring: overlap, backpressure, ordering, OCC."""

import pytest

from repro.core.migration import MigrationOrder
from repro.core.scheduler import IoScheduler
from repro.errors import InvalidArgument
from repro.stack import build_stack

MIB = 1024 * 1024


def _ssd_stack(**kwargs):
    """Cache-free single-SSD stack: every op pays the device, overlap shows."""
    return build_stack(tiers=["ssd"], enable_cache=False, **kwargs)


def _prepare_file(mux, path="/f", nbytes=256 * 1024):
    mux.write_file(path, bytes(nbytes))
    return mux.open(path)


class TestSubmitComplete:
    def test_read_roundtrip(self):
        stack = _ssd_stack()
        mux = stack.mux
        mux.write_file("/f", b"ring payload" + bytes(4096))
        handle = mux.open("/f")
        ring = mux.open_ring(depth=4)
        sub = ring.submit_read(handle, 0, 12)
        assert sub.op == "read"
        assert sub.ino == handle.ino
        done = ring.wait(sub)
        assert done.seq == sub.seq
        assert done.unwrap() == b"ring payload"
        assert done.completed_ns >= done.submitted_ns
        assert done.latency_ns > 0
        mux.close(handle)

    def test_write_then_read_program_order(self):
        # state mutates at submission, in program order: a later-seq read
        # sees an earlier-seq write even before either completion is reaped
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux)
        ring = mux.open_ring(depth=8)
        w = ring.submit_write(handle, 0, b"ORDERED")
        r = ring.submit_read(handle, 0, 7)
        done = {c.seq: c for c in ring.drain()}
        assert done[w.seq].unwrap() == 7
        assert done[r.seq].unwrap() == b"ORDERED"
        mux.close(handle)

    def test_fsync_submission(self):
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux)
        ring = mux.open_ring(depth=2)
        ring.submit_write(handle, 0, b"durable")
        s = ring.submit_fsync(handle)
        done = ring.wait(s)
        assert done.op == "fsync"
        assert done.error is None
        mux.close(handle)

    def test_error_lands_in_completion(self):
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux)
        ring = mux.open_ring(depth=2)
        sub = ring.submit_read(handle, -1, 10)  # negative offset: EINVAL
        done = ring.wait(sub)
        assert isinstance(done.error, InvalidArgument)
        with pytest.raises(InvalidArgument):
            done.unwrap()
        mux.close(handle)

    def test_wait_empty_and_unknown(self):
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux)
        ring = mux.open_ring(depth=2)
        with pytest.raises(InvalidArgument):
            ring.wait()
        sub = ring.submit_read(handle, 0, 10)
        ring.wait(sub)
        with pytest.raises(InvalidArgument):
            ring.wait(sub)  # already reaped
        mux.close(handle)

    def test_close_unregisters(self):
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux)
        with mux.open_ring(depth=2) as ring:
            ring.submit_read(handle, 0, 10)
        assert ring.closed
        assert ring not in mux._rings
        with pytest.raises(InvalidArgument):
            ring.submit_read(handle, 0, 10)
        mux.close(handle)

    def test_bad_depth_rejected(self):
        stack = _ssd_stack()
        with pytest.raises(InvalidArgument):
            stack.mux.open_ring(depth=0)


class TestOverlap:
    def _issue_reads(self, depth, n=8, length=64 * 1024):
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux, nbytes=n * length)
        t0 = stack.clock.now_ns
        ring = mux.open_ring(depth=depth)
        for i in range(n):
            ring.submit_read(handle, i * length, length)
        completions = ring.drain()
        elapsed = stack.clock.now_ns - t0
        mux.close(handle)
        return elapsed, completions, ring

    def test_async_ring_beats_depth1(self):
        wide, _, _ = self._issue_reads(depth=8)
        narrow, _, _ = self._issue_reads(depth=1)
        # eight independent reads on an eight-channel SSD: near-full overlap
        assert narrow > 3 * wide

    def test_depth1_matches_serial_loop(self):
        # a depth-1 ring is the serialized baseline: identical device time,
        # only the constant ring submit/reap costs differ
        n, length = 4, 64 * 1024
        elapsed_ring, _, ring = self._issue_reads(depth=1, n=n, length=length)
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux, nbytes=n * length)
        t0 = stack.clock.now_ns
        for i in range(n):
            mux.read(handle, i * length, length)
        elapsed_serial = stack.clock.now_ns - t0
        mux.close(handle)
        from repro.core import calibration as cal

        # submit CPU after the first op is absorbed by the backpressure
        # wait (the SQE is built while the previous op is in flight), so
        # the exposed ring overhead is one submit plus the n reaps
        ring_cost = cal.RING_SUBMIT_NS + n * cal.RING_REAP_NS
        assert elapsed_ring == elapsed_serial + ring_cost

    def test_backpressure_bounds_overlap(self):
        _, _, ring = self._issue_reads(depth=2, n=8)
        assert ring.backpressure_waits > 0
        assert ring.max_inflight <= 2
        snap = ring.snapshot()
        assert snap["submitted"] == 8
        assert snap["reaped"] == 8
        assert snap["pending"] == 0

    def test_serial_scheduler_disables_overlap(self):
        stack = _ssd_stack(scheduler=IoScheduler(parallel=False))
        mux = stack.mux
        handle = _prepare_file(mux, nbytes=8 * 64 * 1024)
        ring = mux.open_ring(depth=8)
        for i in range(8):
            ring.submit_read(handle, i * 64 * 1024, 64 * 1024)
        # serial ablation: each op ran on the global clock at submit, so
        # nothing is ever in flight and completions strictly increase
        assert ring.inflight() == 0
        done = ring.drain()
        times = [c.completed_ns for c in done]
        assert times == sorted(times)
        assert len(set(times)) == len(times)
        mux.close(handle)

    def test_scheduler_counts_ring_ops(self):
        stack = _ssd_stack()
        mux = stack.mux
        assert "ring_ops" not in mux.scheduler.snapshot()
        handle = _prepare_file(mux)
        ring = mux.open_ring(depth=2)
        ring.submit_read(handle, 0, 10)
        ring.drain()
        assert mux.scheduler.snapshot()["ring_ops"] == 1
        mux.close(handle)


class TestCompletionOrdering:
    def test_same_ns_completions_reap_in_seq_order(self):
        # the reap-order contract, exercised on a manufactured tie: two
        # completions landing on the same nanosecond must come out in
        # submission (seq) order, and wait() must pick the tie's lowest seq
        from repro.core.ring import Completion

        stack = _ssd_stack()
        ring = stack.mux.open_ring(depth=8)
        ring._pending.extend(
            [
                Completion(seq=2, op="read", ino=1, submitted_ns=0, completed_ns=500),
                Completion(seq=1, op="read", ino=1, submitted_ns=0, completed_ns=500),
                Completion(seq=0, op="read", ino=1, submitted_ns=0, completed_ns=700),
            ]
        )
        first = ring.wait()
        assert (first.completed_ns, first.seq) == (500, 1)
        done = ring.drain()
        assert [(c.completed_ns, c.seq) for c in done] == [(500, 2), (700, 0)]

    def test_drain_orders_by_completion_time(self):
        # end-to-end: reaped completions come out (completed_ns, seq)-sorted
        # even though backpressure reorders nothing in submission order
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux, nbytes=8 * 4096)
        ring = mux.open_ring(depth=8)
        subs = [ring.submit_read(handle, 0, 4096) for _ in range(4)]
        done = ring.drain()
        keys = [(c.completed_ns, c.seq) for c in done]
        assert keys == sorted(keys)
        assert {s.seq for s in subs} == {c.seq for c in done}
        mux.close(handle)

    def test_poll_returns_only_due(self):
        stack = _ssd_stack()
        mux = stack.mux
        handle = _prepare_file(mux)
        ring = mux.open_ring(depth=4)
        ring.submit_read(handle, 0, 64 * 1024)
        # nothing has been waited on: the op is still in flight
        assert ring.poll() == []
        assert ring.pending == 1
        ring.drain()
        assert ring.pending == 0
        mux.close(handle)


class TestOccInteraction:
    def test_lock_fallback_quiesces_inflight_ring(self):
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        nbytes = 64 * 4096
        mux.write_file("/f", bytes(nbytes))
        handle = mux.open("/f")
        inode = mux.ns.get(handle.ino)
        src = inode.blt.tiers_used()[0]
        dst = next(t for t in mux.tier_ids() if t != src)

        ring = mux.open_ring(depth=8)
        for i in range(8):
            ring.submit_read(handle, i * 4096, 4096)
        inflight_before = ring.inflight(handle.ino)
        assert inflight_before > 0
        horizon = max(c.completed_ns for c in ring._pending)
        assert stack.clock.global_now_ns < horizon

        # force the pessimistic path: the lock must wait out the ring
        mux.engine.occ.force_lock = True
        result = mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 64, src, dst, reason="test")
        )
        assert result.lock_fallback
        assert stack.clock.global_now_ns >= horizon
        assert ring.inflight(handle.ino) == 0
        # completions were quiesced, not consumed
        assert ring.pending == 8
        done = ring.drain()
        assert all(c.error is None for c in done)
        mux.close(handle)

    def test_quiesce_is_per_inode(self):
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        mux.write_file("/a", bytes(16 * 4096))
        mux.write_file("/b", bytes(16 * 4096))
        ha, hb = mux.open("/a"), mux.open("/b")
        ring = mux.open_ring(depth=8)
        ring.submit_read(ha, 0, 16 * 4096)
        ring.submit_read(hb, 0, 16 * 4096)
        horizon_b = max(c.completed_ns for c in ring._pending if c.ino == hb.ino)
        mux.quiesce_inflight(ha.ino)
        # ops on /b keep flying unless their completion already passed
        assert stack.clock.global_now_ns <= horizon_b
        mux.quiesce_inflight()
        assert ring.inflight() == 0
        mux.close(ha)
        mux.close(hb)
