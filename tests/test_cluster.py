"""Sharded multi-Mux cluster semantics (§4, "Distributed Mux").

Covers the ISSUE-10 cluster contract: consistent-hash stability under
shard membership changes (~1/N keys move), a single-namespace view over
N shards (global depth-1 directories, merged readdir, aggregate statfs),
cross-shard rename atomicity under crash injection at every protocol
step, run-level OCC rebalancing racing foreground writes, and the
cluster ring's parallel-shard overlap + ``(completed_ns, seq)`` reap
discipline.
"""

import pytest

from repro.cluster.bench import balanced_tenant_names, colocated_tenant_names
from repro.cluster.cluster import (
    MIGRATE_TMP,
    RENAME_TMP,
    Cluster,
    build_cluster,
)
from repro.cluster.hashring import HashRing
from repro.errors import (
    CrashTriggered,
    CrossDevice,
    DirectoryNotEmpty,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotSupported,
)
from repro.sim.tasks import Task, run_interleaved
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024
BS = 4096

#: small shards keep the tests fast; every shard is a full 3-tier stack
SMALL = {"pm": 8 * MIB, "ssd": 16 * MIB, "hdd": 64 * MIB}


def small_cluster(shards: int = 2, **kwargs) -> Cluster:
    return build_cluster(shards=shards, capacities=SMALL, **kwargs)


# ---------------------------------------------------------------------------
# consistent hashing
# ---------------------------------------------------------------------------


class TestHashRing:
    KEYS = [f"tenants/t{i}" for i in range(400)]

    def test_deterministic_and_balanced(self):
        ring = HashRing(vnodes=64)
        for n in range(4):
            ring.add_node(n)
        assert [ring.node_for(k) for k in self.KEYS] == [
            ring.node_for(k) for k in self.KEYS
        ]
        spread = ring.spread(self.KEYS)
        assert set(spread) == {0, 1, 2, 3}
        # virtual nodes keep the imbalance bounded (perfect = 100 each)
        assert max(spread.values()) < 3 * min(spread.values())

    def test_add_moves_about_one_nth(self):
        ring = HashRing(vnodes=64)
        for n in range(4):
            ring.add_node(n)
        before = {k: ring.node_for(k) for k in self.KEYS}
        ring.add_node(4)
        moved = [k for k in self.KEYS if ring.node_for(k) != before[k]]
        # ~1/5 of keys move, and every one of them moves TO the new shard
        assert 0.10 * len(self.KEYS) < len(moved) < 0.35 * len(self.KEYS)
        assert all(ring.node_for(k) == 4 for k in moved)

    def test_remove_moves_only_the_dead_shards_keys(self):
        ring = HashRing(vnodes=64)
        for n in range(4):
            ring.add_node(n)
        before = {k: ring.node_for(k) for k in self.KEYS}
        ring.remove_node(2)
        for key in self.KEYS:
            if before[key] != 2:
                # survivors keep every key they already owned
                assert ring.node_for(key) == before[key]
            else:
                assert ring.node_for(key) != 2

    def test_membership_errors(self):
        ring = HashRing()
        with pytest.raises(InvalidArgument):
            ring.node_for("anything")  # empty ring
        ring.add_node(0)
        with pytest.raises(InvalidArgument):
            ring.add_node(0)
        with pytest.raises(InvalidArgument):
            ring.remove_node(7)
        with pytest.raises(InvalidArgument):
            HashRing(vnodes=0)

    def test_name_pickers(self):
        ring = HashRing(vnodes=64)
        for n in range(4):
            ring.add_node(n)
        hot, shard = colocated_tenant_names(ring, "tenants", 6)
        assert len(hot) == 6
        assert all(ring.node_for(f"tenants/{n}") == shard for n in hot)
        spread_names = balanced_tenant_names(ring, "tenants", 8)
        owners = [ring.node_for(f"tenants/{n}") for n in spread_names]
        assert sorted(owners.count(s) for s in range(4)) == [2, 2, 2, 2]


# ---------------------------------------------------------------------------
# namespace over shards
# ---------------------------------------------------------------------------


class TestClusterNamespace:
    def test_depth1_dirs_are_global_and_merged(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/tenants")
        # every shard can resolve the global parent
        for shard in cluster.shards:
            assert shard.mux.ns.exists("/tenants")
        names = balanced_tenant_names(cluster.ring, "tenants", 4)
        for name in names:
            cluster.mkdir(f"/tenants/{name}")
        owners = {cluster.subtree_owner(f"tenants/{n}") for n in names}
        assert owners == {0, 1}, "subtrees should spread over both shards"
        # ...but readdir shows one namespace (and hides /.cluster)
        assert cluster.readdir("/tenants") == sorted(names)
        assert cluster.readdir("/") == ["tenants"]

    def test_subtree_ops_route_to_owner(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.write_file("/t/x/f", b"payload") if False else None
        cluster.mkdir("/t/x")
        cluster.write_file("/t/x/f", b"payload")
        owner = cluster.shards[cluster.subtree_owner("t/x")]
        other = cluster.shards[1 - owner.shard_id]
        assert owner.mux.ns.exists("/t/x/f")
        assert not other.mux.ns.exists("/t/x/f")
        assert cluster.read_file("/t/x/f") == b"payload"
        assert cluster.getattr("/t/x/f").size == 7

    def test_rmdir_global_dir_requires_empty_everywhere(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/sub")
        with pytest.raises(DirectoryNotEmpty):
            cluster.rmdir("/t")
        cluster.rmdir("/t/sub")
        cluster.rmdir("/t")
        for shard in cluster.shards:
            assert not shard.mux.ns.exists("/t")

    def test_statfs_aggregates_all_shards(self):
        cluster = small_cluster(2).mux
        single = small_cluster(1).mux
        assert (
            cluster.statfs().total_blocks == 2 * single.statfs().total_blocks
        )

    def test_unlink_routes_and_missing_paths_raise(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/d")
        cluster.mkdir("/d/s")
        cluster.write_file("/d/s/f", b"x")
        cluster.unlink("/d/s/f")
        assert not cluster.exists("/d/s/f")
        with pytest.raises(FileNotFound):
            cluster.getattr("/d/s/f")
        with pytest.raises(FileNotFound):
            cluster.unlink("/d/s/f")

    def test_shards_must_share_the_clock(self):
        from repro.cluster.cluster import ClusterMux
        from repro.stack import build_stack

        a = build_stack(capacities=SMALL)
        b = build_stack(capacities=SMALL)  # different SimClock
        with pytest.raises(InvalidArgument):
            ClusterMux([a, b], a.clock)


# ---------------------------------------------------------------------------
# rename
# ---------------------------------------------------------------------------


def _make_cross_shard_pair(cluster):
    """Two subtrees guaranteed to live on different shards."""
    cluster.mkdir("/t")
    probe = 0
    first_key = None
    names = []
    while len(names) < 2:
        name = f"d{probe}"
        probe += 1
        owner = cluster.ring.node_for(f"t/{name}")
        if first_key is None:
            first_key, names = owner, [name]
        elif owner != first_key:
            names.append(name)
    for name in names:
        cluster.mkdir(f"/t/{name}")
    return f"/t/{names[0]}", f"/t/{names[1]}"


class TestClusterRename:
    def test_same_shard_rename_is_local(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        cluster.write_file("/t/a/f", b"stay")
        cluster.rename("/t/a/f", "/t/a/g")
        assert cluster.read_file("/t/a/g") == b"stay"
        assert cluster.stats.get("cross_shard_renames") == 0

    def test_cross_shard_file_rename_moves_bytes(self):
        cluster = small_cluster(2).mux
        src_dir, dst_dir = _make_cross_shard_pair(cluster)
        payload = bytes(range(256)) * 64  # 16 KiB
        cluster.write_file(f"{src_dir}/f", payload)
        cluster.rename(f"{src_dir}/f", f"{dst_dir}/g")
        assert cluster.read_file(f"{dst_dir}/g") == payload
        assert not cluster.exists(f"{src_dir}/f")
        assert cluster.stats.get("cross_shard_renames") == 1
        # the bytes crossed the simulated wire, not host memory
        dst_shard = cluster._shard_for(f"{dst_dir}/g")
        assert dst_shard.wire.stats.get("bytes_on_wire") >= len(payload)

    def test_cross_shard_rename_onto_directory_fails(self):
        cluster = small_cluster(2).mux
        src_dir, dst_dir = _make_cross_shard_pair(cluster)
        cluster.write_file(f"{src_dir}/f", b"x")
        cluster.mkdir(f"{dst_dir}/sub")
        with pytest.raises(IsADirectory):
            cluster.rename(f"{src_dir}/f", f"{dst_dir}/sub")

    def test_subtree_root_rename_redirects_ownership(self):
        cluster = small_cluster(2).mux
        src_dir, dst_dir = _make_cross_shard_pair(cluster)
        cluster.write_file(f"{src_dir}/f", b"follow me")
        src_key = src_dir[1:]
        old_owner = cluster.subtree_owner(src_key)
        # rename the subtree ROOT to a name hashing to the other shard:
        # data stays put, the override table redirects routing
        probe = 0
        while True:
            target = f"/t/moved{probe}"
            probe += 1
            if cluster.ring.node_for(target[1:]) != old_owner:
                break
        cluster.rename(src_dir, target)
        assert cluster.subtree_owner(target[1:]) == old_owner
        assert cluster.read_file(f"{target}/f") == b"follow me"
        assert cluster.stats.get("dir_renames_redirected") == 1

    def test_deep_cross_shard_dir_rename_is_exdev(self):
        cluster = small_cluster(2).mux
        src_dir, dst_dir = _make_cross_shard_pair(cluster)
        cluster.mkdir(f"{src_dir}/inner")
        with pytest.raises(CrossDevice):
            cluster.rename(f"{src_dir}/inner", f"{dst_dir}/inner")
        cluster.mkdir("/top")
        with pytest.raises(NotSupported):
            cluster.rename("/top", "/renamed-top")


class TestCrossShardRenameCrash:
    """Power-cut the two-phase rename at every labeled protocol point.

    The invariant: after recovery exactly one of {old, new} exists, the
    surviving file holds the full payload, and no temp files remain.
    """

    PAYLOAD = bytes(range(256)) * 128  # 32 KiB

    @pytest.mark.parametrize(
        "cut_at", ["copied", "intent", "committed", "unlinked"]
    )
    def test_crash_converges(self, cut_at):
        cluster = small_cluster(2).mux
        src_dir, dst_dir = _make_cross_shard_pair(cluster)
        old, new = f"{src_dir}/f", f"{dst_dir}/g"
        cluster.write_file(old, self.PAYLOAD)
        handle = cluster.open(old)
        cluster.fsync(handle)
        cluster.close(handle)

        def cut(label):
            if label == cut_at:
                raise CrashTriggered(f"power cut at {label}")

        cluster._crash_hook = cut
        with pytest.raises(CrashTriggered):
            cluster.rename(old, new)
        cluster._crash_hook = None
        cluster.crash()
        cluster.recover()

        old_there = cluster.exists(old)
        new_there = cluster.exists(new)
        assert old_there != new_there, (
            f"cut at {cut_at!r}: expected exactly one of old/new, "
            f"got old={old_there} new={new_there}"
        )
        survivor = old if old_there else new
        assert cluster.read_file(survivor) == self.PAYLOAD
        # before the intent is durable the old name must win; after the
        # commit point the new name must win
        if cut_at == "copied":
            assert old_there
        if cut_at in ("committed", "unlinked"):
            assert new_there
        for shard in cluster.shards:
            leftovers = []

            def walk(path):
                for name in shard.mux.readdir(path):
                    child = path.rstrip("/") + "/" + name
                    if child == "/.cluster":
                        continue
                    if shard.mux.getattr(child).is_dir:
                        walk(child)
                    elif name.endswith(RENAME_TMP) or name.endswith(
                        MIGRATE_TMP
                    ):
                        leftovers.append(child)

            walk("/")
            assert leftovers == []

    def test_rename_then_crash_later_is_durable(self):
        cluster = small_cluster(2).mux
        src_dir, dst_dir = _make_cross_shard_pair(cluster)
        cluster.write_file(f"{src_dir}/f", self.PAYLOAD)
        cluster.rename(f"{src_dir}/f", f"{dst_dir}/g")
        cluster.crash()
        cluster.recover()
        assert cluster.read_file(f"{dst_dir}/g") == self.PAYLOAD
        assert not cluster.exists(f"{src_dir}/f")


# ---------------------------------------------------------------------------
# OCC rebalancing
# ---------------------------------------------------------------------------


class TestSubtreeMigration:
    def test_clean_migration_moves_everything(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        cluster.mkdir("/t/a/deep")
        cluster.write_file("/t/a/one", b"1" * (8 * BS))
        cluster.write_file("/t/a/deep/two", b"2" * (4 * BS))
        src = cluster.subtree_owner("t/a")
        dst = 1 - src
        summary = cluster.migrate_subtree("t/a", dst)
        assert summary["files_moved"] == 2
        assert summary["bytes_moved"] == 12 * BS
        assert cluster.subtree_owner("t/a") == dst
        assert cluster.read_file("/t/a/one") == b"1" * (8 * BS)
        assert cluster.read_file("/t/a/deep/two") == b"2" * (4 * BS)
        assert not cluster.shards[src].mux.ns.exists("/t/a")

    def test_override_survives_crash(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        cluster.write_file("/t/a/f", b"x" * BS)
        src = cluster.subtree_owner("t/a")
        dst = 1 - src
        cluster.migrate_subtree("t/a", dst)
        cluster.crash()
        cluster.recover()
        assert cluster.subtree_owner("t/a") == dst
        assert cluster.read_file("/t/a/f") == b"x" * BS

    def test_foreground_writes_conflict_and_retry(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        path = "/t/a/busy"
        cluster.write_file(path, bytes(64 * BS))
        src = cluster.subtree_owner("t/a")
        dst = 1 - src
        handle = cluster.open(path, OpenFlags.RDWR)
        writes = []

        def racer(step):
            # dirty the file during the first few copy rounds, then stop
            # so OCC validation can eventually succeed
            if step < 2:
                data = f"racer-{step}".encode()
                cluster.write(handle, step * BS, data)
                writes.append((step * BS, data))

        task = Task(cluster.migrate_subtree_task("t/a", dst))
        summary = run_interleaved(task, racer)
        cluster.close(handle)
        assert summary["conflicts"] > 0, "racer writes must be detected"
        assert summary["attempts"] > 1
        assert cluster.subtree_owner("t/a") == dst
        for offset, data in writes:
            assert cluster.read_file(path)[offset : offset + len(data)] == data

    def test_lock_fallback_guarantees_completion(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        path = "/t/a/hostile"
        cluster.write_file(path, bytes(64 * BS))
        src = cluster.subtree_owner("t/a")
        dst = 1 - src
        handle = cluster.open(path, OpenFlags.RDWR)
        counter = [0]

        def hostile(step):
            # dirty the file on EVERY yield: optimistic validation can
            # never win, the pessimistic fallback must finish the move
            counter[0] += 1
            cluster.write(handle, (counter[0] % 64) * BS, b"spin")

        task = Task(cluster.migrate_subtree_task("t/a", dst))
        summary = run_interleaved(task, hostile)
        cluster.close(handle)
        assert summary["lock_fallbacks"] >= 1
        assert cluster.subtree_owner("t/a") == dst
        assert cluster.stats.get("occ_lock_fallbacks") >= 1

    def test_namespace_churn_forces_replan(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        cluster.write_file("/t/a/f0", bytes(32 * BS))
        src = cluster.subtree_owner("t/a")
        dst = 1 - src
        created = []

        def churn(step):
            if step == 0:
                cluster.write_file("/t/a/late", b"L" * BS)
                created.append("/t/a/late")

        task = Task(cluster.migrate_subtree_task("t/a", dst))
        summary = run_interleaved(task, churn)
        assert summary["conflicts"] >= 1
        assert cluster.subtree_owner("t/a") == dst
        assert cluster.read_file("/t/a/late") == b"L" * BS

    def test_migrate_to_self_is_a_noop(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        cluster.write_file("/t/a/f", b"x")
        owner = cluster.subtree_owner("t/a")
        summary = cluster.migrate_subtree("t/a", owner)
        assert summary["files_moved"] == 0


class TestRebalance:
    def _load_hot_shard(self, cluster, names):
        """Drive enough ring traffic at the named subtrees to register
        real pressure on their owner's device timelines."""
        for name in names:
            cluster.mkdir(f"/tenants/{name}")
            cluster.write_file(f"/tenants/{name}/f", bytes(16 * BS))
        ring = cluster.open_ring(depth=8)
        handles = [
            cluster.open(f"/tenants/{n}/f", OpenFlags.RDWR) for n in names
        ]
        for round_ in range(12):
            for handle in handles:
                ring.submit_write(handle, 0, bytes(8 * BS))
                ring.submit_fsync(handle)
        ring.close()
        for handle in handles:
            cluster.close(handle)

    def test_hotspot_sheds_to_cold_peer(self):
        cluster = build_cluster(
            shards=2, tiers=["hdd"], capacities=SMALL, enable_cache=False
        ).mux
        cluster.mkdir("/tenants")
        hot_names, hot_shard = colocated_tenant_names(
            cluster.ring, "tenants", 4
        )
        self._load_hot_shard(cluster, hot_names)
        loads = cluster.shard_loads()
        assert loads[hot_shard] > 0.0
        assert loads[1 - hot_shard] == 0.0
        summary = cluster.rebalance(max_moves=3, imbalance=2.0)
        # max_moves caps the shed; the rebalancer stops once the hot
        # shard's share drops to its fair fraction (2 of 4 subtrees)
        assert 1 <= summary["moves"] <= 3
        assert summary["files_moved"] == summary["moves"]
        moved = [
            n for n in hot_names
            if cluster.subtree_owner(f"tenants/{n}") != hot_shard
        ]
        assert len(moved) == summary["moves"]
        # hottest subtrees went first, data still readable via new owner
        for name in hot_names:
            assert cluster.read_file(f"/tenants/{name}/f")[:1] == b"\x00"
        assert cluster.stats.get("rebalances") == 1

    def test_balanced_cluster_does_not_churn(self):
        cluster = small_cluster(2).mux
        cluster.mkdir("/tenants")
        names = balanced_tenant_names(cluster.ring, "tenants", 4)
        for name in names:
            cluster.mkdir(f"/tenants/{name}")
            cluster.write_file(f"/tenants/{name}/f", b"x" * BS)
            cluster.read_file(f"/tenants/{name}/f")
        summary = cluster.rebalance()
        assert summary["moves"] == 0


# ---------------------------------------------------------------------------
# cluster ring: parallel shard frames
# ---------------------------------------------------------------------------


class TestClusterRing:
    def _population(self, cluster, count):
        cluster.mkdir("/t")
        # balanced placement so multi-shard runs actually use every shard
        names = balanced_tenant_names(cluster.ring, "t", count, prefix="d")
        handles = []
        for name in names:
            cluster.mkdir(f"/t/{name}")
            path = f"/t/{name}/f"
            cluster.write_file(path, bytes(16 * BS))
            handles.append(cluster.open(path, OpenFlags.RDWR))
        return handles

    def test_reap_order_and_remapping(self):
        cluster = small_cluster(2).mux
        handles = self._population(cluster, 4)
        ring = cluster.open_ring(depth=8)
        subs = []
        for handle in handles:
            subs.append(ring.submit_read(handle, 0, BS))
            subs.append(ring.submit_write(handle, BS, b"w" * BS))
        assert [s.seq for s in subs] == list(range(8))
        comps = ring.drain()
        assert len(comps) == 8
        order = [(c.completed_ns, c.seq) for c in comps]
        assert order == sorted(order)
        assert {c.seq for c in comps} == set(range(8))
        # cluster inos encode the owning shard
        for sub in subs:
            assert sub.ino >> 32 in (0, 1)
        snap = ring.snapshot()
        assert snap["submitted"] == 8
        assert snap["reaped"] == 8
        ring.close()
        for handle in handles:
            cluster.close(handle)

    def test_shards_overlap_in_simulated_time(self):
        """The same ops finish sooner on 2 shards than on 1 — the shard
        device timelines genuinely overlap instead of serializing."""

        def makespan(shards: int) -> int:
            cluster = build_cluster(
                shards=shards, tiers=["hdd"], capacities=SMALL,
                enable_cache=False,
            ).mux
            handles = self._population(cluster, 4)
            start = cluster.clock.now_ns
            ring = cluster.open_ring(depth=8)
            for _ in range(4):
                for handle in handles:
                    ring.submit_write(handle, 0, bytes(8 * BS))
                    ring.submit_fsync(handle)
            ring.drain()
            ring.close()
            span = cluster.clock.now_ns - start
            for handle in handles:
                cluster.close(handle)
            return span

        assert makespan(2) < 0.75 * makespan(1)

    def test_ring_errors_surface_as_cqes(self):
        cluster = small_cluster(2).mux
        handles = self._population(cluster, 1)
        ring = cluster.open_ring(depth=4)
        ring.submit_read(handles[0], 1024 * MIB, BS)  # far past EOF
        comps = ring.drain()
        assert len(comps) == 1
        # past-EOF reads are short, not errors — but the completion must
        # carry the result through the remap
        assert comps[0].error is None
        assert comps[0].result == b""
        ring.close()
        cluster.close(handles[0])

    def test_quiesce_through_shard_occ(self):
        """A subtree migration's lock fallback must quiesce in-flight
        cluster-ring ops on the source shard (they registered with the
        shard mux), not deadlock or corrupt."""
        cluster = small_cluster(2).mux
        cluster.mkdir("/t")
        cluster.mkdir("/t/a")
        path = "/t/a/f"
        cluster.write_file(path, bytes(32 * BS))
        handle = cluster.open(path, OpenFlags.RDWR)
        ring = cluster.open_ring(depth=8)
        for i in range(6):
            ring.submit_write(handle, i * BS, b"inflight")
        src = cluster.subtree_owner("t/a")

        def hostile(step):
            cluster.write(handle, 0, b"dirty")

        task = Task(cluster.migrate_subtree_task("t/a", 1 - src))
        summary = run_interleaved(task, hostile)
        assert summary["lock_fallbacks"] >= 1
        ring.drain()
        ring.close()
        cluster.close(handle)
        assert cluster.read_file(path)[:5] == b"dirty"
