"""Unit tests for the run-level span APIs introduced by the batched data
path: PageCache get_span/put_span, ScmCacheManager get_many/put_many, the
chunked device arena, PM load_run/store_run, and the file-system
``_read_span_into`` hooks (holes, partial edge blocks, EOF straddling,
eviction mid-span).

The central property everywhere is *scalar equivalence*: a span call must
charge the same simulated time, bump the same counters and leave the same
cache/LRU state as the per-block loop it replaced.
"""

import pytest

from repro.core.cache import ScmCacheManager
from repro.devices.base import ARENA_CHUNK_BLOCKS, Device
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.profile import OPTANE_SSD_P4800X
from repro.errors import DeviceError
from repro.fscommon.pagecache import PageCache
from repro.sim.clock import SimClock
from repro.vfs.interface import OpenFlags

BS = 4096
MIB = 1024 * 1024


def block(tag: int) -> bytes:
    return bytes([tag % 256]) * BS


# ---------------------------------------------------------------------------
# PageCache spans
# ---------------------------------------------------------------------------


class TestPageCacheSpans:
    @pytest.fixture
    def twin(self):
        """Two identical caches: one driven scalar, one via span calls."""

        def make():
            clock = SimClock()
            written = []
            cache = PageCache(
                clock,
                capacity_pages=4,
                page_size=BS,
                writeback=lambda ino, fb, data: written.append((ino, fb, data)),
            )
            return cache, written, clock

        return make(), make()

    def test_span_cached_prefix(self, twin):
        (cache, _, _), _ = twin
        for fb in (0, 1, 3):
            cache.put(1, fb, block(fb), dirty=False)
        assert cache.span_cached(1, 0, 4) == 2  # hole at fb=2 stops the run
        assert cache.span_cached(1, 2, 2) == 0
        assert cache.span_cached(1, 3, 1) == 1

    def test_get_span_matches_scalar_gets(self, twin):
        (scalar, _, clk_a), (span, _, clk_b) = twin
        for cache in (scalar, span):
            for fb in range(3):
                cache.put(1, fb, block(fb), dirty=False)
        t0a, t0b = clk_a.now_ns, clk_b.now_ns

        parts = [scalar.get(1, fb) for fb in range(3)]
        out = bytearray(3 * BS)
        span.get_span(1, 0, 3, out, 0)

        assert bytes(out) == b"".join(parts)
        assert clk_a.now_ns - t0a == clk_b.now_ns - t0b
        assert scalar.stats.get("hit") == span.stats.get("hit") == 3
        # same LRU order afterwards: inserting one page evicts the same victim
        scalar.put(1, 9, block(9), dirty=False)
        scalar.put(1, 10, block(10), dirty=False)
        span.put(1, 9, block(9), dirty=False)
        span.put(1, 10, block(10), dirty=False)
        assert [k for k in scalar._pages] == [k for k in span._pages]

    def test_put_span_matches_scalar_puts(self, twin):
        (scalar, wb_a, clk_a), (span, wb_b, clk_b) = twin
        data = b"".join(block(i) for i in range(6))
        t0a, t0b = clk_a.now_ns, clk_b.now_ns

        for i in range(6):
            scalar.put(1, i, data[i * BS : (i + 1) * BS], dirty=True)
        span.put_span(1, 0, data, dirty=True)

        assert clk_a.now_ns - t0a == clk_b.now_ns - t0b
        assert scalar.stats.snapshot() == span.stats.snapshot()
        # capacity 4, six inserts: eviction fires mid-span; the dirty
        # victims and their writeback order must match the scalar loop
        assert wb_a == wb_b
        assert len(wb_b) == 2
        assert [k for k in scalar._pages] == [k for k in span._pages]

    def test_put_span_rejects_misaligned(self, twin):
        (cache, _, _), _ = twin
        with pytest.raises(ValueError):
            cache.put_span(1, 0, b"x" * (BS + 1), dirty=False)
        with pytest.raises(ValueError):
            cache.put_span(1, 0, b"", dirty=False)

    def test_put_span_overwrites_and_keeps_dirty(self, twin):
        (cache, _, _), _ = twin
        cache.put(1, 0, block(1), dirty=True)
        cache.put_span(1, 0, block(2) + block(3), dirty=False)
        assert cache.get(1, 0) == block(2)
        assert cache.get(1, 1) == block(3)
        assert cache.dirty_pages == 1  # dirty bit survives a clean overwrite


# ---------------------------------------------------------------------------
# SCM cache manager batched paths
# ---------------------------------------------------------------------------


class TestScmCacheSpans:
    @pytest.fixture
    def pair(self, clock, nova):
        scalar = ScmCacheManager(clock, nova, capacity_blocks=8, block_size=BS)
        span = ScmCacheManager(clock, nova, capacity_blocks=8, block_size=BS)
        return scalar, span, clock

    def test_get_many_matches_scalar_gets(self, pair):
        scalar, span, clock = pair
        data = b"".join(block(i) for i in range(4))
        scalar.put_many(7, 0, data)
        span.put_many(7, 0, data)

        t0 = clock.now_ns
        parts = [scalar.get(7, fb) for fb in range(4)]
        scalar_cost = clock.now_ns - t0

        out = bytearray(4 * BS)
        t0 = clock.now_ns
        span.get_many(7, 0, 4, out, 0)
        span_cost = clock.now_ns - t0

        assert bytes(out) == b"".join(parts) == data
        assert span_cost == scalar_cost
        assert scalar.stats.get("hit") == span.stats.get("hit") == 4

    def test_put_many_matches_scalar_puts(self, pair):
        scalar, span, clock = pair
        blocks = [block(i) for i in range(12)]

        t0 = clock.now_ns
        for i, b in enumerate(blocks):
            scalar.put(3, i, b)
        scalar_cost = clock.now_ns - t0

        t0 = clock.now_ns
        span.put_many(3, 0, b"".join(blocks))
        span_cost = clock.now_ns - t0

        # capacity 8, twelve inserts: MGLRU evicts mid-span either way
        assert span_cost == scalar_cost
        assert scalar.stats.snapshot() == span.stats.snapshot()
        assert scalar.stats.get("evict") == span.stats.get("evict") == 4
        assert sorted(scalar._slots) == sorted(span._slots)
        assert scalar._slots == span._slots  # identical slot assignment
        for fb in range(4, 12):  # survivors readable via both paths
            assert scalar.get(3, fb) == span.get(3, fb) == blocks[fb]
        scalar.check_invariants()
        span.check_invariants()

    def test_note_misses_matches_scalar_misses(self, pair):
        scalar, span, clock = pair
        t0 = clock.now_ns
        for fb in range(5):
            assert scalar.get(9, fb) is None
        scalar_cost = clock.now_ns - t0

        t0 = clock.now_ns
        span.note_misses(5)
        span_cost = clock.now_ns - t0

        assert span_cost == scalar_cost
        assert scalar.stats.get("miss") == span.stats.get("miss") == 5

    def test_put_many_rejects_misaligned(self, pair):
        scalar, _, _ = pair
        with pytest.raises(ValueError):
            scalar.put_many(1, 0, b"y" * (BS - 1))
        with pytest.raises(ValueError):
            scalar.put_many(1, 0, b"")

    def test_invalidate_range_matches_scalar(self, pair):
        scalar, span, _ = pair
        data = b"".join(block(i) for i in range(6))
        scalar.put_many(2, 10, data)
        span.put_many(2, 10, data)
        dropped_scalar = sum(scalar.invalidate(2, fb) for fb in range(8, 14))
        dropped_span = span.invalidate_range(2, 8, 6)
        assert dropped_span == dropped_scalar == 4
        assert sorted(scalar._slots) == sorted(span._slots)
        assert scalar.stats.get("invalidate") == span.stats.get("invalidate")

    def test_span_cached_returns_full_layout(self, pair):
        scalar, _, _ = pair
        scalar.put_many(5, 0, block(0) + block(1))
        scalar.put(5, 3, block(3))
        # interior cached runs are visible past the first gap (RLE layout)
        assert scalar.span_cached(5, 0, 4) == [
            (0, 2, True),
            (2, 1, False),
            (3, 1, True),
        ]
        assert scalar.span_cached(5, 0, 2) == [(0, 2, True)]
        assert scalar.span_cached(5, 2, 1) == [(2, 1, False)]
        assert scalar.span_cached(5, 9, 0) == []
        assert scalar.contains(5, 3)
        assert not scalar.contains(5, 2)


# ---------------------------------------------------------------------------
# Device arena (chunked run store)
# ---------------------------------------------------------------------------


class TestDeviceArena:
    @pytest.fixture
    def dev(self):
        clock = SimClock()
        return Device("arena", OPTANE_SSD_P4800X, 64 * MIB, clock)

    def test_holes_read_as_zeros(self, dev):
        dev.write_blocks(10, block(1))
        dev.write_blocks(12, block(2))
        data = dev.read_blocks(9, 5)  # hole, data, hole, data, hole
        assert data == bytes(BS) + block(1) + bytes(BS) + block(2) + bytes(BS)

    def test_span_crossing_chunk_boundary(self, dev):
        start = ARENA_CHUNK_BLOCKS - 2  # straddles two backing chunks
        payload = b"".join(block(i) for i in range(4))
        dev.write_blocks(start, payload)
        assert dev.read_blocks(start, 4) == payload
        assert dev.peek_block(start + 1) == block(1)
        assert dev.materialized_blocks == 4

    def test_discard_rezeroes_and_frees_chunk(self, dev):
        dev.write_blocks(0, block(7))
        assert dev.materialized_blocks == 1
        dev.discard_block(0)
        assert dev.materialized_blocks == 0
        assert dev.peek_block(0) is None
        assert dev.read_blocks(0, 1) == bytes(BS)
        assert not dev._chunks  # empty chunk released

    def test_partial_overwrite_keeps_neighbours(self, dev):
        dev.write_blocks(0, b"".join(block(i) for i in range(3)))
        dev.write_blocks(1, block(9))
        assert dev.read_blocks(0, 3) == block(0) + block(9) + block(2)


# ---------------------------------------------------------------------------
# PM run ops
# ---------------------------------------------------------------------------


class TestPmRunOps:
    def test_load_run_matches_scalar_loads(self, clock):
        a = PersistentMemoryDevice("pma", 16 * MIB, clock)
        b = PersistentMemoryDevice("pmb", 16 * MIB, clock)
        payload = b"".join(block(i) for i in range(4))
        a.store(0, payload)
        b.store(0, payload)
        a.flush_range(0, len(payload))
        b.flush_range(0, len(payload))

        t0 = clock.now_ns
        parts = [a.load(i * BS, BS) for i in range(4)]
        scalar_cost = clock.now_ns - t0

        t0 = clock.now_ns
        run = b.load_run(0, 4, BS)
        run_cost = clock.now_ns - t0

        assert run == b"".join(parts) == payload
        assert run_cost == scalar_cost
        assert a.stats.snapshot() == b.stats.snapshot()

    def test_store_run_matches_scalar_stores(self, clock):
        a = PersistentMemoryDevice("pma", 16 * MIB, clock)
        b = PersistentMemoryDevice("pmb", 16 * MIB, clock)
        payload = b"".join(block(i) for i in range(4))

        t0 = clock.now_ns
        for i in range(4):
            a.store(i * BS, payload[i * BS : (i + 1) * BS])
        scalar_cost = clock.now_ns - t0

        t0 = clock.now_ns
        b.store_run(0, payload, BS)
        run_cost = clock.now_ns - t0

        assert run_cost == scalar_cost
        assert a.stats.snapshot() == b.stats.snapshot()
        assert a.unflushed_lines == b.unflushed_lines == len(payload) // 64
        assert b.load_run(0, 4, BS) == payload

    def test_store_run_rejects_misaligned(self, clock):
        pm = PersistentMemoryDevice("pm", 16 * MIB, clock)
        with pytest.raises(DeviceError):
            pm.store_run(0, b"z" * (BS + 3), BS)

    def test_flush_range_clears_interval_partially(self, clock):
        pm = PersistentMemoryDevice("pm", 16 * MIB, clock)
        pm.store(0, b"a" * 256)  # lines 0..3
        pm.store(1024, b"b" * 256)  # lines 16..19
        assert pm.unflushed_lines == 8
        pm.flush_range(128, 128)  # clears lines 2..3 only
        assert pm.unflushed_lines == 6
        pm.flush_range(0, 2048)
        assert pm.unflushed_lines == 0


# ---------------------------------------------------------------------------
# File-system span reads (holes, partial edges, EOF)
# ---------------------------------------------------------------------------


class TestFsSpanReads:
    @pytest.fixture(params=["nova", "xfs", "ext4"])
    def fs(self, request, nova, xfs, ext4):
        return {"nova": nova, "xfs": xfs, "ext4": ext4}[request.param]

    def test_read_straddling_hole(self, fs):
        h = fs.create("/f")
        fs.write(h, 0, block(1))
        fs.write(h, 3 * BS, block(2))  # blocks 1..2 are a hole
        data = fs.read(h, 0, 4 * BS)
        assert data == block(1) + bytes(2 * BS) + block(2)
        fs.close(h)

    def test_partial_first_and_last_block(self, fs):
        h = fs.create("/f")
        payload = bytes(range(256)) * 48  # 12 KiB over blocks 0..2
        fs.write(h, 0, payload)
        assert fs.read(h, 100, 9000) == payload[100:9100]
        fs.close(h)

    def test_eof_straddling_read_is_short(self, fs):
        h = fs.create("/f")
        fs.write(h, 0, b"q" * 5000)
        assert fs.read(h, 4096, 4 * BS) == b"q" * (5000 - 4096)
        assert fs.read(h, 5000, 10) == b""
        fs.close(h)

    def test_read_into_places_at_offset(self, fs):
        h = fs.create("/f")
        fs.write(h, 0, b"mux!" * 1024)
        out = bytearray(b"\xff" * (4096 + 8))
        n = fs.read_into(h, 0, 4096, out, 4)
        assert n == 4096
        assert out[:4] == b"\xff" * 4  # untouched prefix
        assert out[4 : 4 + 4096] == b"mux!" * 1024
        assert out[-4:] == b"\xff" * 4  # untouched suffix
        fs.close(h)

    def test_read_into_respects_rdonly_checks(self, fs):
        h = fs.create("/f")
        fs.write(h, 0, b"abc")
        fs.close(h)
        wh = fs.open("/f", OpenFlags.WRONLY)
        out = bytearray(8)
        with pytest.raises(Exception):
            fs.read_into(wh, 0, 3, out, 0)
        fs.close(wh)

    def test_unaligned_overwrite_round_trip(self, fs):
        h = fs.create("/f")
        base = bytes(range(256)) * 64  # 16 KiB
        fs.write(h, 0, base)
        fs.write(h, 5000, b"X" * 6000)  # partial first + last block RMW
        expect = bytearray(base)
        expect[5000:11000] = b"X" * 6000
        assert fs.read(h, 0, len(base)) == bytes(expect)
        fs.close(h)
