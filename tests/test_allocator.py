"""Unit + property tests for the block allocators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError, NoSpace
from repro.fscommon.allocator import AllocationGroups, BitmapAllocator


class TestBitmapAllocator:
    def test_alloc_within_range(self):
        alloc = BitmapAllocator(100, 50)
        block = alloc.alloc_block()
        assert 100 <= block < 150
        assert alloc.is_allocated(block)

    def test_free_count(self):
        alloc = BitmapAllocator(0, 10)
        alloc.alloc_extent(4)
        assert alloc.free_blocks == 6
        assert alloc.used_blocks == 4

    def test_contiguous_preferred(self):
        alloc = BitmapAllocator(0, 100)
        runs = alloc.alloc_extent(10)
        assert len(runs) == 1
        assert runs[0][1] == 10

    def test_fragmented_allocation(self):
        alloc = BitmapAllocator(0, 10)
        # allocate everything then free alternating blocks
        alloc.alloc_extent(10)
        for block in range(0, 10, 2):
            alloc.free_run(block, 1)
        runs = alloc.alloc_extent(5)
        assert sum(got for _, got in runs) == 5
        assert len(runs) == 5  # fully fragmented

    def test_exhaustion(self):
        alloc = BitmapAllocator(0, 4)
        alloc.alloc_extent(4)
        with pytest.raises(NoSpace):
            alloc.alloc_block()

    def test_overcommit_rejected_without_partial_alloc(self):
        alloc = BitmapAllocator(0, 4)
        alloc.alloc_extent(2)
        with pytest.raises(NoSpace):
            alloc.alloc_extent(3)
        assert alloc.free_blocks == 2  # rollback left state intact

    def test_double_free_rejected(self):
        alloc = BitmapAllocator(0, 4)
        block = alloc.alloc_block()
        alloc.free_run(block, 1)
        with pytest.raises(DeviceError):
            alloc.free_run(block, 1)

    def test_free_out_of_range(self):
        alloc = BitmapAllocator(10, 4)
        with pytest.raises(DeviceError):
            alloc.free_run(9, 1)

    def test_hint_respected_when_free(self):
        alloc = BitmapAllocator(0, 100)
        start, got = alloc.alloc_run(5, hint=40)
        assert start == 40
        assert got == 5

    def test_reuse_after_free(self):
        alloc = BitmapAllocator(0, 4)
        runs = alloc.alloc_extent(4)
        alloc.free_run(runs[0][0], runs[0][1])
        assert alloc.free_blocks == 4
        alloc.alloc_extent(4)
        assert alloc.free_blocks == 0


class TestAllocationGroups:
    def test_groups_partition_space(self):
        groups = AllocationGroups(100, 100, 4)
        assert len(groups.groups) == 4
        assert sum(g.count for g in groups.groups) == 100
        assert groups.groups[0].base == 100

    def test_alloc_spills_across_groups(self):
        groups = AllocationGroups(0, 40, 4)
        runs = groups.alloc_extent(35)
        assert sum(got for _, got in runs) == 35
        assert groups.free_blocks == 5

    def test_round_robin_start_group(self):
        groups = AllocationGroups(0, 40, 4)
        first = groups.alloc_extent(1)[0][0]
        second = groups.alloc_extent(1)[0][0]
        # consecutive small allocations land in different groups
        assert first // 10 != second // 10

    def test_free_routed_to_owner(self):
        groups = AllocationGroups(0, 40, 4)
        runs = groups.alloc_extent(25)
        for start, got in runs:
            groups.free_run(start, got)
        assert groups.free_blocks == 40

    def test_exhaustion(self):
        groups = AllocationGroups(0, 8, 2)
        groups.alloc_extent(8)
        with pytest.raises(NoSpace):
            groups.alloc_extent(1)

    def test_hint_prefers_owning_group(self):
        groups = AllocationGroups(0, 40, 4)
        runs = groups.alloc_extent(2, hint=25)
        assert 20 <= runs[0][0] < 30

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            AllocationGroups(0, 2, 4)


# ---------------------------------------------------------------------------
# property-based: allocator never double-allocates, accounting exact
# ---------------------------------------------------------------------------


@settings(max_examples=150, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["alloc", "free"]), st.integers(1, 12)),
        max_size=50,
    )
)
def test_bitmap_allocator_model(ops):
    alloc = BitmapAllocator(0, 64)
    owned = []  # list of (start, count) runs we hold
    for op, n in ops:
        if op == "alloc":
            try:
                runs = alloc.alloc_extent(n)
            except NoSpace:
                assert alloc.free_blocks < n
                continue
            for run in runs:
                owned.append(run)
        elif owned:
            start, count = owned.pop()
            alloc.free_run(start, count)
    alloc.check_invariants()
    held = sum(count for _, count in owned)
    assert alloc.used_blocks == held
    # no overlap among held runs
    blocks = []
    for start, count in owned:
        blocks.extend(range(start, start + count))
    assert len(blocks) == len(set(blocks))
    for block in blocks:
        assert alloc.is_allocated(block)
