"""Unit + property tests for the extent tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fscommon.extents import Extent, ExtentTree


class TestOffsetTree:
    """value_is_offset=True: file block -> device block mapping."""

    def test_map_and_lookup(self):
        tree = ExtentTree()
        tree.map_range(10, 5, 100)
        assert tree.lookup(10) == 100
        assert tree.lookup(14) == 104
        assert tree.lookup(15) is None
        assert tree.lookup(9) is None

    def test_coalesce_adjacent_contiguous(self):
        tree = ExtentTree()
        tree.map_range(0, 4, 100)
        tree.map_range(4, 4, 104)
        assert len(tree) == 1
        assert tree.lookup(7) == 107

    def test_no_coalesce_when_values_jump(self):
        tree = ExtentTree()
        tree.map_range(0, 4, 100)
        tree.map_range(4, 4, 200)
        assert len(tree) == 2

    def test_overwrite_splits(self):
        tree = ExtentTree()
        tree.map_range(0, 10, 100)
        tree.map_range(3, 4, 500)
        assert tree.lookup(2) == 102
        assert tree.lookup(3) == 500
        assert tree.lookup(6) == 503
        assert tree.lookup(7) == 107
        tree.check_invariants()

    def test_unmap_middle(self):
        tree = ExtentTree()
        tree.map_range(0, 10, 100)
        removed = tree.unmap_range(4, 2)
        assert removed == 2
        assert tree.lookup(4) is None
        assert tree.lookup(5) is None
        assert tree.lookup(3) == 103
        assert tree.lookup(6) == 106

    def test_unmap_nothing(self):
        tree = ExtentTree()
        assert tree.unmap_range(0, 100) == 0

    def test_runs_with_holes(self):
        tree = ExtentTree()
        tree.map_range(2, 3, 100)
        tree.map_range(8, 2, 200)
        runs = list(tree.runs(0, 12))
        assert runs == [
            (0, 2, None),
            (2, 3, 100),
            (5, 3, None),
            (8, 2, 200),
            (10, 2, None),
        ]

    def test_runs_partial_extent(self):
        tree = ExtentTree()
        tree.map_range(0, 10, 100)
        assert list(tree.runs(3, 4)) == [(3, 4, 103)]

    def test_end_block(self):
        tree = ExtentTree()
        assert tree.end_block() == 0
        tree.map_range(5, 5, 0)
        assert tree.end_block() == 10

    def test_mapped_blocks(self):
        tree = ExtentTree()
        tree.map_range(0, 3, 0)
        tree.map_range(10, 2, 50)
        assert tree.mapped_blocks == 5

    def test_copy_independent(self):
        tree = ExtentTree()
        tree.map_range(0, 4, 0)
        clone = tree.copy()
        clone.unmap_range(0, 4)
        assert tree.lookup(0) == 0
        assert clone.lookup(0) is None

    def test_invalid_count(self):
        tree = ExtentTree()
        with pytest.raises(ValueError):
            tree.map_range(0, 0, 0)

    def test_extent_value_at(self):
        ext = Extent(10, 5, 100)
        assert ext.value_at(12, True) == 102
        assert ext.value_at(12, False) == 100
        with pytest.raises(ValueError):
            ext.value_at(20, True)


class TestTierTree:
    """value_is_offset=False: file block -> tier id (BLT mode)."""

    def test_coalesce_same_value(self):
        tree = ExtentTree(value_is_offset=False)
        tree.map_range(0, 4, 1)
        tree.map_range(4, 4, 1)
        assert len(tree) == 1

    def test_no_coalesce_different_value(self):
        tree = ExtentTree(value_is_offset=False)
        tree.map_range(0, 4, 1)
        tree.map_range(4, 4, 2)
        assert len(tree) == 2

    def test_value_constant_along_run(self):
        tree = ExtentTree(value_is_offset=False)
        tree.map_range(0, 8, 3)
        assert tree.lookup(0) == 3
        assert tree.lookup(7) == 3

    def test_split_preserves_value(self):
        tree = ExtentTree(value_is_offset=False)
        tree.map_range(0, 10, 2)
        tree.unmap_range(4, 2)
        assert tree.lookup(3) == 2
        assert tree.lookup(6) == 2
        tree.check_invariants()


# ---------------------------------------------------------------------------
# property-based tests: tree vs a flat dict model
# ---------------------------------------------------------------------------

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["map", "unmap"]),
        st.integers(min_value=0, max_value=200),  # start
        st.integers(min_value=1, max_value=50),  # count
        st.integers(min_value=0, max_value=1000),  # value
    ),
    max_size=60,
)


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy, offset_mode=st.booleans())
def test_tree_matches_flat_model(ops, offset_mode):
    tree = ExtentTree(value_is_offset=offset_mode)
    model = {}
    for op, start, count, value in ops:
        if op == "map":
            tree.map_range(start, count, value)
            for i in range(count):
                model[start + i] = value + i if offset_mode else value
        else:
            tree.unmap_range(start, count)
            for i in range(count):
                model.pop(start + i, None)
    tree.check_invariants()
    for block in range(0, 260):
        assert tree.lookup(block) == model.get(block), f"block {block}"
    assert tree.mapped_blocks == len(model)


@settings(max_examples=100, deadline=None)
@given(ops=ops_strategy)
def test_runs_cover_range_exactly(ops):
    tree = ExtentTree()
    for op, start, count, value in ops:
        if op == "map":
            tree.map_range(start, count, value)
        else:
            tree.unmap_range(start, count)
    runs = list(tree.runs(0, 300))
    # runs partition [0, 300) without gaps or overlaps
    pos = 0
    for start, count, _ in runs:
        assert start == pos
        assert count > 0
        pos += count
    assert pos == 300
