"""Degraded-mode tiering: survive a failing tier, don't just crash cleanly.

Covers the per-tier health state machine, error-scoped reads (EIO only
for blocks on a dead tier), placement routing around unhealthy tiers,
bounded retry/backoff on transient faults, BLT write atomicity under
mid-write failures, evacuation, and the scripted end-to-end scenario from
the issue's acceptance criteria.
"""

import errno

import pytest

from repro.core.health import (
    HEALTH_OFFLINE_ERRORS,
    HEALTH_RECOVERY_SUCCESSES,
    HEALTH_SUSPECT_ERRORS,
    HealthState,
    TierHealth,
)
from repro.core.policy import MigrationOrder
from repro.devices.faults import FaultConfig
from repro.errors import FsError, TierUnavailable
from repro.stack import build_stack
from repro.tools import fsck

MIB = 1024 * 1024


class TestHealthMachine:
    def test_starts_healthy(self):
        health = TierHealth()
        assert health.state is HealthState.HEALTHY
        assert health.accepts_writes

    def test_consecutive_errors_demote_to_suspect(self):
        health = TierHealth()
        for _ in range(HEALTH_SUSPECT_ERRORS - 1):
            health.record_error()
        assert health.state is HealthState.HEALTHY
        health.record_error()
        assert health.state is HealthState.SUSPECT
        assert not health.accepts_writes

    def test_success_resets_the_error_streak(self):
        health = TierHealth()
        for _ in range(HEALTH_SUSPECT_ERRORS - 1):
            health.record_error()
        health.record_success()
        for _ in range(HEALTH_SUSPECT_ERRORS - 1):
            health.record_error()
        assert health.state is HealthState.HEALTHY

    def test_suspect_escalates_to_offline(self):
        health = TierHealth()
        for _ in range(HEALTH_OFFLINE_ERRORS):
            health.record_error()
        assert health.state is HealthState.OFFLINE
        assert health.is_offline

    def test_suspect_recovers_after_sustained_successes(self):
        health = TierHealth()
        for _ in range(HEALTH_SUSPECT_ERRORS):
            health.record_error()
        for _ in range(HEALTH_RECOVERY_SUCCESSES - 1):
            health.record_success()
        assert health.state is HealthState.SUSPECT
        health.record_success()
        assert health.state is HealthState.HEALTHY

    def test_offline_is_sticky(self):
        health = TierHealth()
        health.mark_offline()
        for _ in range(10 * HEALTH_RECOVERY_SUCCESSES):
            health.record_success()
        assert health.state is HealthState.OFFLINE
        health.mark_online()
        assert health.state is HealthState.HEALTHY


def place_on(stack, path, tier_name, size=64 * 1024):
    """Create a file and migrate its blocks onto the named tier."""
    mux = stack.mux
    handle = mux.create(path)
    mux.write(handle, 0, b"\xa5" * size)
    src = stack.tier_ids["pm"]
    dst = stack.tier_ids[tier_name]
    if src != dst:
        blocks = size // mux.block_size
        result = mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, blocks, src, dst, reason="test")
        )
        assert result.moved_blocks == blocks
    return handle


class TestScriptedScenario:
    """The acceptance scenario: SSD dies mid-run, the stack keeps serving."""

    @pytest.fixture
    def stack(self):
        return build_stack(faults={"ssd": FaultConfig()}, fault_seed=3)

    def test_ssd_offline_mid_run(self, stack):
        mux = stack.mux
        ssd = stack.tier_ids["ssd"]
        on_pm = place_on(stack, "/on_pm", "pm")
        on_ssd = place_on(stack, "/on_ssd", "ssd")
        on_hdd = place_on(stack, "/on_hdd", "hdd")

        # -- the device dies; the health monitor declares the tier dead
        stack.injectors["ssd"].set_offline()
        mux.mark_tier_offline(ssd)

        # reads scoped to surviving tiers keep succeeding
        assert mux.read(on_pm, 0, 4096) == b"\xa5" * 4096
        assert mux.read(on_hdd, 0, 4096) == b"\xa5" * 4096

        # reads needing the dead tier fail with EIO — error-scoped, not global
        with pytest.raises(FsError) as excinfo:
            mux.read(on_ssd, 0, 4096)
        assert excinfo.value.errno == errno.EIO
        assert mux.stats.get("reads_failed_offline") > 0

        # getattr still answers, flagging attributes affinitive to the
        # dead tier as stale instead of failing
        stat = mux.getattr("/on_ssd")
        assert stat.size == 64 * 1024

        # new writes route around the dead tier
        fresh = mux.create("/fresh")
        mux.write(fresh, 0, b"\x5a" * 32768)
        inode = mux.ns.resolve("/fresh")
        assert ssd not in inode.blt.tiers_used()
        mux.close(fresh)

        # -- repair: device returns, tier is drained, then re-admitted
        stack.injectors["ssd"].set_online()
        summary = mux.evacuate(ssd)
        assert summary["files_drained"] == 1
        assert summary["files_failed"] == 0
        survivor = mux.ns.resolve("/on_ssd")
        assert ssd not in survivor.blt.tiers_used()
        mux.mark_tier_online(ssd)

        # data is intact and fsck has nothing to report
        assert mux.read(on_ssd, 0, 4096) == b"\xa5" * 4096
        assert fsck.check_mux(mux) == []
        for handle in (on_pm, on_ssd, on_hdd):
            mux.close(handle)

    def test_stale_affinity_flagged(self, stack):
        mux = stack.mux
        ssd = stack.tier_ids["ssd"]
        handle = place_on(stack, "/aff", "ssd")
        mux.read(handle, 0, 4096)  # atime affinity follows the serving tier
        assert mux.ns.resolve("/aff").affinity.owners()["atime"] == ssd

        mux.mark_tier_offline(ssd)
        stat = mux.getattr("/aff")
        assert "atime" in stat.extra.get("stale_attrs", [])
        assert mux.stats.get("stale_attr_reads") > 0

        mux.mark_tier_online(ssd)
        stat = mux.getattr("/aff")
        assert "stale_attrs" not in stat.extra
        mux.close(handle)

    def test_fsck_reports_stranded_blocks(self, stack):
        mux = stack.mux
        ssd = stack.tier_ids["ssd"]
        handle = place_on(stack, "/stranded", "ssd")
        mux.mark_tier_offline(ssd)
        problems = fsck.check_mux(mux, deep=False)
        assert any("stranded on offline tier ssd" in p for p in problems)
        mux.mark_tier_online(ssd)
        assert fsck.check_mux(mux, deep=False) == []
        mux.close(handle)


class TestTransientFaults:
    """p=0.3 transient write errors: retried invisibly, deterministically."""

    def run_workload(self):
        stack = build_stack(
            faults={
                "pm": FaultConfig(write_error_p=0.3, transient_fraction=1.0)
            },
            fault_seed=17,
        )
        mux = stack.mux
        mux.mkdir("/w")
        handles = [mux.create(f"/w/f{i}") for i in range(10)]
        for op in range(1000):
            handle = handles[op % len(handles)]
            mux.write(handle, (op // len(handles)) * 4096, b"\xcd" * 4096)
        for handle in handles:
            mux.close(handle)
        return stack

    def test_zero_user_visible_failures(self):
        stack = self.run_workload()  # any raise fails the test
        assert stack.mux.stats.get("fault_retries") > 0
        assert stack.mux.stats.get("fault_backoff_ns") > 0
        # backoff charged simulated time, never host sleeps
        assert stack.clock.now_ns > stack.mux.stats.get("fault_backoff_ns") > 0

    def test_retry_counters_deterministic(self):
        a, b = self.run_workload(), self.run_workload()
        keys = ("fault_retries", "fault_backoff_ns", "fault_gave_up")
        assert [a.mux.stats.get(k) for k in keys] == [
            b.mux.stats.get(k) for k in keys
        ]
        assert a.clock.now_ns == b.clock.now_ns

    def test_migration_surfaces_retry_stats(self):
        stack = build_stack(
            faults={
                "ssd": FaultConfig(write_error_p=0.4, transient_fraction=1.0)
            },
            fault_seed=5,
        )
        mux = stack.mux
        handle = mux.create("/mig")
        mux.write(handle, 0, b"\xa5" * (256 * 1024))
        blocks = (256 * 1024) // mux.block_size
        result = mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, blocks,
                stack.tier_ids["pm"], stack.tier_ids["ssd"], reason="test",
            )
        )
        assert result.moved_blocks == blocks
        assert result.retries > 0
        assert result.backoff_ns > 0
        assert not result.gave_up
        assert mux.engine.stats.get("retries") == result.retries
        assert mux.engine.stats.get("backoff_ns") == result.backoff_ns
        mux.close(handle)


class TestWriteAtomicity:
    """NoSpace/DeviceError mid-write must not leave a half-updated BLT."""

    def test_failed_write_leaves_blt_untouched(self):
        # single tier, so the failing write has nowhere to spill; NOVA on
        # PM is DAX-synchronous, so the device error fires at write time
        stack = build_stack(tiers=["pm"], faults={"pm": FaultConfig()})
        mux = stack.mux
        victim = mux.create("/victim")
        mux.write(victim, 0, b"\xee" * (64 * 1024))
        inode = mux.ns.resolve("/victim")
        size_before = inode.size
        end_before = inode.blt.end_block()
        tiers_before = set(inode.blt.tiers_used())

        stack.injectors["pm"].config = FaultConfig(
            write_error_p=1.0, transient_fraction=0.0
        )
        with pytest.raises(FsError):
            mux.write(victim, 64 * 1024, b"\xa5" * (128 * 1024))
        # the write failed as a unit: no size growth, no half-mapped BLT
        assert inode.size == size_before
        assert inode.blt.end_block() == end_before
        assert set(inode.blt.tiers_used()) == tiers_before
        # the original data is still readable once the device recovers
        stack.injectors["pm"].config = FaultConfig()
        stack.injectors["pm"].clear_latched()
        assert mux.read(victim, 0, 4096) == b"\xee" * 4096
        mux.close(victim)

    def test_spill_to_survivor_is_atomic_and_complete(self):
        stack = build_stack(
            faults={
                "ssd": FaultConfig(write_error_p=1.0, transient_fraction=0.0)
            }
        )
        mux = stack.mux
        ssd = stack.tier_ids["ssd"]
        mux.registry.get(ssd).health.mark_suspect()  # placement avoids it
        handle = mux.create("/spilled")
        mux.write(handle, 0, b"\xa5" * (128 * 1024))
        inode = mux.ns.resolve("/spilled")
        assert inode.size == 128 * 1024
        assert ssd not in inode.blt.tiers_used()
        assert mux.read(handle, 0, 4096) == b"\xa5" * 4096
        mux.close(handle)


class TestEvacuation:
    def test_evacuate_offline_device_reports_failures(self):
        """If the device still rejects reads, the drain fails loudly."""
        stack = build_stack(faults={"ssd": FaultConfig()})
        mux = stack.mux
        ssd = stack.tier_ids["ssd"]
        handle = place_on(stack, "/stuck", "ssd")
        stack.injectors["ssd"].set_offline()
        mux.mark_tier_offline(ssd)
        # a warm page cache can rescue data off a dead device (DRAM copy);
        # drop it so the drain really has to read the rejecting media
        stack.filesystems["ssd"].page_cache.drop_clean()
        summary = mux.evacuate(ssd)
        assert summary["files_failed"] == 1
        assert summary["files_drained"] == 0
        assert mux.ns.resolve("/stuck").blt.blocks_on(ssd) > 0
        mux.close(handle)

    def test_evacuate_is_deterministic(self):
        def run():
            stack = build_stack(
                faults={
                    "ssd": FaultConfig(
                        read_error_p=0.2, transient_fraction=1.0
                    )
                },
                fault_seed=23,
            )
            handles = [
                place_on(stack, f"/e{i}", "ssd") for i in range(4)
            ]
            summary = stack.mux.evacuate(stack.tier_ids["ssd"])
            for handle in handles:
                stack.mux.close(handle)
            return summary, stack.clock.now_ns

        assert run() == run()
