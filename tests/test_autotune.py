"""Configuration search (§4, "Configuring Mux")."""

import pytest

from repro.bench.macro import fileserver, varmail
from repro.core.autotune import (
    DEFAULT_CANDIDATES,
    AutoTuner,
    Configuration,
    Evaluation,
)

MIB = 1024 * 1024
CAPS = {"pm": 8 * MIB, "ssd": 32 * MIB, "hdd": 128 * MIB}


class TestConfiguration:
    def test_build_produces_stack(self):
        config = Configuration("test", policy="tpfs", enable_cache=False)
        stack = config.build(CAPS)
        from repro.core.policies import TpfsPolicy

        assert isinstance(stack.mux.policy, TpfsPolicy)
        assert stack.mux.cache is None

    def test_tier_subset(self):
        config = Configuration("two", tiers=("pm", "ssd"))
        stack = config.build(CAPS)
        assert len(stack.mux.tier_ids()) == 2

    def test_default_candidates_all_buildable(self):
        for config in DEFAULT_CANDIDATES:
            stack = config.build(CAPS)
            stack.mux.write_file("/probe", b"x")
            assert stack.mux.read_file("/probe") == b"x"


class TestAutoTuner:
    def test_run_ranks_best_first(self):
        tuner = AutoTuner(varmail, capacities=CAPS, operations=60)
        evaluations = tuner.run()
        assert len(evaluations) == len(DEFAULT_CANDIDATES)
        scores = [e.ops_per_sec for e in evaluations]
        assert scores == sorted(scores, reverse=True)

    def test_best(self):
        tuner = AutoTuner(varmail, capacities=CAPS, operations=40)
        best = tuner.best()
        assert isinstance(best, Evaluation)
        assert best.ops_per_sec > 0

    def test_deterministic(self):
        def score():
            tuner = AutoTuner(varmail, capacities=CAPS, operations=40)
            return [(e.configuration.name, e.ops_per_sec) for e in tuner.run()]

        assert score() == score()

    def test_custom_candidates(self):
        candidates = [
            Configuration("only-lru", policy="lru"),
            Configuration("only-tpfs", policy="tpfs"),
        ]
        tuner = AutoTuner(
            varmail, candidates=candidates, capacities=CAPS, operations=30
        )
        names = {e.configuration.name for e in tuner.run()}
        assert names == {"only-lru", "only-tpfs"}

    def test_capacity_pressure_differentiates(self):
        """Under a tiny PM tier, at least two configs score differently."""
        tuner = AutoTuner(
            fileserver, capacities=CAPS, files=30, operations=150
        )
        scores = {e.ops_per_sec for e in tuner.run()}
        assert len(scores) > 1
