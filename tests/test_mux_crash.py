"""Crash-consistency composition through Mux (§4).

"Mux sends fsync requests to all the file systems that are responsible
for a given file and synchronizes the completion ... Upon a crash, Mux
relies on each participating file system to recover the data blocks it
stores."
"""

import pytest

from repro.core.policies import PinnedPolicy
from repro.core.policy import MigrationOrder
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


def crash_recover(mux):
    mux.crash()
    mux.recover()


class TestCrashComposition:
    def test_fsynced_file_on_journaled_tier_survives(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        mux.policy = PinnedPolicy(stack.tier_id("hdd"))
        handle = mux.create("/f")
        mux.write(handle, 0, b"KEEP" * 256)
        mux.fsync(handle)
        crash_recover(mux)
        handle = mux.open("/f")
        assert mux.read(handle, 0, 1024) == b"KEEP" * 256
        mux.close(handle)

    def test_unsynced_hdd_data_lost_but_pm_data_survives(self, stack_nocache):
        """Crash consistency is composed per participating FS: NOVA blocks
        survive without fsync, Ext4 blocks do not."""
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, b"P" * (2 * BS))  # pm (NOVA): durable at write
        hdd_id = stack.tier_id("hdd")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 2, stack.tier_id("pm"), hdd_id)
        )  # commit fsyncs the destination
        mux.policy = PinnedPolicy(hdd_id)
        mux.write(handle, 2 * BS, b"V" * BS)  # hdd (Ext4): volatile, no fsync
        crash_recover(mux)
        handle = mux.open("/f")
        assert mux.read(handle, 0, 2) == b"PP"  # migrated+fsynced data safe
        assert mux.read(handle, 2 * BS, 2) != b"VV"  # unsynced ext4 data gone
        mux.close(handle)

    def test_migrated_data_survives_crash_right_after_commit(self, stack_nocache):
        """OCC commit fsyncs the destination before punching the source, so
        a crash immediately after migration cannot lose the only copy."""
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, b"M" * (4 * BS))
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, 4, stack.tier_id("pm"), stack.tier_id("ssd")
            )
        )
        crash_recover(mux)
        handle = mux.open("/f")
        assert mux.read(handle, 0, 4 * BS) == b"M" * (4 * BS)
        mux.close(handle)

    def test_fsync_fans_out_to_every_participant(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(8 * BS))
        ssd_id = stack.tier_id("ssd")
        hdd_id = stack.tier_id("hdd")
        mux.engine.migrate_now(MigrationOrder(handle.ino, 0, 2, stack.tier_id("pm"), ssd_id))
        mux.engine.migrate_now(MigrationOrder(handle.ino, 2, 2, stack.tier_id("pm"), hdd_id))
        ssd_fsyncs = stack.filesystems["ssd"].stats.get("fsync")
        hdd_fsyncs = stack.filesystems["hdd"].stats.get("fsync")
        mux.fsync(handle)
        assert stack.filesystems["ssd"].stats.get("fsync") == ssd_fsyncs + 1
        assert stack.filesystems["hdd"].stats.get("fsync") == hdd_fsyncs + 1
        mux.close(handle)

    def test_namespace_survives_crash(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        mux.mkdir("/d")
        mux.write_file("/d/f", b"x")
        crash_recover(mux)
        assert mux.readdir("/d") == ["f"]

    def test_migration_state_cleared_by_crash(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(4 * BS))
        inode = mux.ns.get(handle.ino)
        inode.migration_active = True  # crash mid-migration
        inode.dirty_during_migration.add(1)
        crash_recover(mux)
        assert not inode.migration_active
        assert not inode.dirty_during_migration

    def test_operations_work_after_recovery(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        mux.write_file("/f", b"before")
        handle = mux.open("/f")
        mux.fsync(handle)
        mux.close(handle)
        crash_recover(mux)
        handle = mux.open("/f")
        mux.write(handle, 6, b"-after")
        assert mux.read(handle, 0, 12) == b"before-after"
        mux.close(handle)
