"""Property tests for the device data models (content correctness)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.base import Device
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.profile import OPTANE_SSD_P4800X
from repro.sim.clock import SimClock

MIB = 1024 * 1024
BS = 4096
SPAN = 64 * 1024  # PM test address window


@settings(max_examples=120, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, SPAN - 1),  # addr
            st.integers(1, 2000),  # length
            st.integers(0, 255),  # fill byte
        ),
        max_size=30,
    )
)
def test_pm_store_load_matches_bytearray(ops):
    clock = SimClock()
    pm = PersistentMemoryDevice("pm", 1 * MIB, clock)
    model = bytearray(SPAN + 2000)
    for addr, length, fill in ops:
        data = bytes([fill]) * length
        pm.store(addr, data)
        model[addr : addr + length] = data
    assert pm.load(0, len(model)) == bytes(model)


@settings(max_examples=120, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 63),  # block
            st.integers(1, 4),  # count
            st.integers(0, 255),  # fill
        ),
        max_size=25,
    )
)
def test_block_device_matches_dict_model(ops):
    clock = SimClock()
    dev = Device("d", OPTANE_SSD_P4800X, 1 * MIB, clock)
    model = {}
    for block, count, fill in ops:
        count = min(count, dev.num_blocks - block)
        if count <= 0:
            continue
        data = bytes([fill]) * (count * BS)
        dev.write_blocks(block, data)
        for i in range(count):
            model[block + i] = bytes([fill]) * BS
    for block in range(64 + 4):
        if block >= dev.num_blocks:
            break
        expect = model.get(block, bytes(BS))
        assert dev.read_blocks(block) == expect, block


@settings(max_examples=80, deadline=None)
@given(
    flushes=st.lists(
        st.tuples(st.integers(0, 8000), st.integers(1, 500)), max_size=20
    )
)
def test_pm_flush_accounting_never_negative(flushes):
    clock = SimClock()
    pm = PersistentMemoryDevice("pm", 1 * MIB, clock)
    pm.store(0, bytes(16 * 1024))
    for addr, length in flushes:
        pm.flush_range(addr, length)
        assert pm.unflushed_lines >= 0
    pm.flush_range(0, 16 * 1024)
    assert pm.unflushed_lines == 0


def test_clock_monotonic_under_mixed_io():
    clock = SimClock()
    pm = PersistentMemoryDevice("pm", 1 * MIB, clock)
    last = clock.now_ns
    for i in range(50):
        pm.store((i * 977) % (512 * 1024), bytes(64))
        pm.load((i * 331) % (512 * 1024), 64)
        assert clock.now_ns >= last
        last = clock.now_ns
