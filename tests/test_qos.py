"""QoS (§4): per-class bandwidth quotas, class/file placement pinning."""

import pytest

from repro.core.qos import DEFAULT_CLASS, IoClass, QosManager
from repro.errors import InvalidArgument
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024
BS = 4096


class TestQosManagerUnit:
    def test_default_class_unlimited(self, stack_nocache, clock):
        qos = QosManager(stack_nocache.clock)
        handle = stack_nocache.mux.create("/f")
        assert qos.class_of(handle) == DEFAULT_CLASS
        assert qos.charge(handle, 100 * MIB) == 0

    def test_register_and_tag(self, stack_nocache):
        qos = QosManager(stack_nocache.clock)
        qos.register(IoClass("batch", quota_bytes_per_sec=1e6))
        handle = stack_nocache.mux.create("/f")
        qos.tag(handle, "batch")
        assert qos.class_of(handle) == "batch"

    def test_unknown_class_rejected(self, stack_nocache):
        qos = QosManager(stack_nocache.clock)
        handle = stack_nocache.mux.create("/f")
        with pytest.raises(InvalidArgument):
            qos.tag(handle, "ghost")

    def test_duplicate_class_rejected(self, stack_nocache):
        qos = QosManager(stack_nocache.clock)
        qos.register(IoClass("x"))
        with pytest.raises(InvalidArgument):
            qos.register(IoClass("x"))

    def test_bad_quota_rejected(self):
        with pytest.raises(InvalidArgument):
            IoClass("bad", quota_bytes_per_sec=0)

    def test_burst_allows_initial_spike(self, stack_nocache):
        qos = QosManager(stack_nocache.clock)
        qos.register(IoClass("b", quota_bytes_per_sec=1e6, burst_bytes=4 * MIB))
        handle = stack_nocache.mux.create("/f")
        qos.tag(handle, "b")
        assert qos.charge(handle, 2 * MIB) == 0  # within burst
        assert qos.charge(handle, 4 * MIB) > 0  # over budget -> throttled

    def test_tokens_refill_with_simulated_time(self, stack_nocache):
        clock = stack_nocache.clock
        qos = QosManager(clock)
        qos.register(IoClass("b", quota_bytes_per_sec=1e6, burst_bytes=1 * MIB))
        handle = stack_nocache.mux.create("/f")
        qos.tag(handle, "b")
        qos.charge(handle, 1 * MIB)  # drains the bucket
        clock.charge(2.0)  # 2 simulated seconds pass
        assert qos.charge(handle, 1 * MIB) == 0  # refilled


class TestQosThroughMux:
    def test_throttled_class_slower(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        clock = stack.clock
        qos = mux.enable_qos()
        # 50 MB/s sustained with a 1 MiB burst allowance
        qos.register(
            IoClass("batch", quota_bytes_per_sec=50e6, burst_bytes=MIB)
        )

        fast = mux.create("/interactive")
        slow = mux.create("/batch")
        qos.tag(slow, "batch")

        t0 = clock.now_ns
        for i in range(8):
            mux.write(fast, i * MIB, bytes(MIB))
        unthrottled = clock.now_ns - t0
        t0 = clock.now_ns
        for i in range(8):
            mux.write(slow, i * MIB, bytes(MIB))
        throttled = clock.now_ns - t0
        # 8 MiB at 50 MB/s ~ 160 ms; untrottled PM writes are ~ms
        assert throttled > unthrottled * 10
        assert qos.stats.get("throttled_ops.batch") > 0
        mux.close(fast)
        mux.close(slow)

    def test_reads_also_throttled(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        qos = mux.enable_qos()
        qos.register(IoClass("batch", quota_bytes_per_sec=10e6, burst_bytes=MIB))
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(4 * MIB))
        qos.tag(handle, "batch")
        t0 = stack.clock.now_ns
        mux.read(handle, 0, 4 * MIB)
        elapsed_s = (stack.clock.now_ns - t0) / 1e9
        assert elapsed_s > 0.2  # ~3 MiB over budget at 10 MB/s
        mux.close(handle)

    def test_class_placement_pin(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        qos = mux.enable_qos()
        hdd_id = stack.tier_id("hdd")
        qos.register(IoClass("scrubber", pinned_tier=hdd_id))
        handle = mux.create("/scrub.tmp")
        qos.tag(handle, "scrubber")
        mux.write(handle, 0, bytes(8 * BS))
        inode = mux.ns.get(handle.ino)
        assert inode.blt.tiers_used() == [hdd_id]  # policy bypassed
        mux.close(handle)


class TestFilePinning:
    def test_set_placement_routes_writes(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        ssd_id = stack.tier_id("ssd")
        mux.write_file("/f", b"first")  # lands on pm (policy)
        mux.set_placement("/f", ssd_id)
        handle = mux.open("/f", OpenFlags.RDWR)
        mux.write(handle, 4096, bytes(4 * BS))
        inode = mux.ns.get(handle.ino)
        assert inode.blt.lookup(1) == ssd_id
        mux.close(handle)

    def test_clear_pin(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        mux.write_file("/f", b"x")
        mux.set_placement("/f", stack.tier_id("hdd"))
        mux.set_placement("/f", None)
        handle = mux.open("/f", OpenFlags.RDWR)
        mux.write(handle, 4096, bytes(BS))
        assert mux.ns.get(handle.ino).blt.lookup(1) == stack.tier_id("pm")
        mux.close(handle)

    def test_bad_tier_rejected(self, stack_nocache):
        from repro.errors import ReproError

        stack = stack_nocache
        stack.mux.write_file("/f", b"x")
        with pytest.raises(ReproError):
            stack.mux.set_placement("/f", 99)

    def test_pin_falls_back_when_tier_full(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        pm_free = stack.filesystems["pm"].statfs().free_bytes
        mux.write_file("/f", b"x")
        mux.set_placement("/f", stack.tier_id("pm"))
        handle = mux.open("/f", OpenFlags.RDWR)
        # more than PM can hold: the pin yields to capacity reality
        total = pm_free + 2 * MIB
        offset = 0
        while offset < total:
            mux.write(handle, offset, bytes(MIB))
            offset += MIB
        inode = mux.ns.get(handle.ino)
        assert len(inode.blt.tiers_used()) >= 2
        mux.close(handle)


class TestReport:
    def test_report_contains_sections(self, stack):
        mux = stack.mux
        mux.write_file("/f", b"hello")
        text = mux.report()
        assert "tiers:" in text
        assert "pm" in text
        assert "migrations:" in text
        assert "ops:" in text

    def test_report_shows_qos(self, stack_nocache):
        mux = stack_nocache.mux
        qos = mux.enable_qos()
        qos.register(IoClass("batch", quota_bytes_per_sec=5e6))
        assert "qos[batch]" in mux.report()
