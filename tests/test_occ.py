"""OCC Synchronizer (§2.4): migration never loses or overwrites user
updates, commits only conflict-free copies, retries dirty blocks and falls
back to locking after bounded retries."""

import pytest

from repro.core import calibration as cal
from repro.core.policy import MigrationOrder
from repro.sim.tasks import run_interleaved

BS = 4096


@pytest.fixture
def env(stack_nocache):
    stack = stack_nocache
    mux = stack.mux
    handle = mux.create("/f")
    payload = b"".join(bytes([i + 1]) * BS for i in range(16))
    mux.write(handle, 0, payload)
    return stack, mux, handle


def order(stack, handle, start=0, count=16, src="pm", dst="ssd"):
    return MigrationOrder(
        handle.ino, start, count, stack.tier_id(src), stack.tier_id(dst)
    )


class TestCleanMigration:
    def test_moves_all_blocks(self, env):
        stack, mux, handle = env
        result = mux.engine.migrate_now(order(stack, handle))
        assert result.moved_blocks == 16
        assert result.attempts == 1
        assert result.conflicts == 0
        assert not result.lock_fallback

    def test_data_intact_after_migration(self, env):
        stack, mux, handle = env
        expect = mux.read(handle, 0, 16 * BS)
        mux.engine.migrate_now(order(stack, handle))
        assert mux.read(handle, 0, 16 * BS) == expect

    def test_source_space_released(self, env):
        stack, mux, handle = env
        pm_fs = stack.filesystems["pm"]
        used_before = pm_fs.statfs().used_blocks
        mux.engine.migrate_now(order(stack, handle))
        assert pm_fs.statfs().used_blocks <= used_before - 14

    def test_version_incremented_twice(self, env):
        stack, mux, handle = env
        inode = mux.ns.get(handle.ino)
        v0 = inode.version
        mux.engine.migrate_now(order(stack, handle))
        assert inode.version == v0 + 2
        assert not inode.migration_active

    def test_migrating_holes_is_noop(self, env):
        stack, mux, handle = env
        result = mux.engine.migrate_now(order(stack, handle, start=100, count=8))
        assert result.moved_blocks == 0
        assert result.skipped_blocks == 8

    def test_same_tier_rejected(self, env):
        stack, mux, handle = env
        from repro.errors import MigrationError

        with pytest.raises(MigrationError):
            mux.engine.migrate_now(order(stack, handle, src="pm", dst="pm"))


class TestConcurrentWrites:
    """User writes interleaved with migration steps — the §2.4 races."""

    def test_write_during_migration_not_lost(self, env):
        stack, mux, handle = env
        task = mux.engine.submit(order(stack, handle))
        wrote = {"done": False}

        def user_write(step):
            if step == 0 and not wrote["done"]:
                mux.write(handle, 3 * BS, b"USERDATA")
                wrote["done"] = True

        result = run_interleaved(task, user_write)
        assert wrote["done"]
        # the user's update survived the concurrent migration
        assert mux.read(handle, 3 * BS, 8) == b"USERDATA"

    def test_conflicting_block_retried(self, env):
        stack, mux, handle = env
        inode = mux.ns.get(handle.ino)
        task = mux.engine.submit(order(stack, handle))

        def user_write(step):
            if inode.migration_active and step < 1:
                mux.write(handle, 0, b"CONFLICT")

        result = run_interleaved(task, user_write)
        assert result.conflicts > 0
        assert result.attempts >= 2
        assert mux.read(handle, 0, 8) == b"CONFLICT"

    def test_clean_blocks_commit_despite_conflicts(self, env):
        stack, mux, handle = env
        ssd_id = stack.tier_id("ssd")
        inode = mux.ns.get(handle.ino)
        fired = {"n": 0}
        task = mux.engine.submit(order(stack, handle))

        def user_write(step):
            if step == 0:
                mux.write(handle, 0, b"X")  # dirty only block 0
                fired["n"] += 1

        result = run_interleaved(task, user_write)
        # every block except the conflicted one moved on some attempt
        assert inode.blt.blocks_on(ssd_id) == 16
        assert mux.read(handle, 0, 1) == b"X"

    def test_repeated_conflicts_trigger_lock_fallback(self, env):
        stack, mux, handle = env
        inode = mux.ns.get(handle.ino)
        task = mux.engine.submit(order(stack, handle))

        def hostile_write(step):
            # dirty every block on every interleave point
            if inode.migration_active:
                for fb in range(16):
                    mux.write(handle, fb * BS, bytes([0xEE]))

        result = run_interleaved(task, hostile_write)
        assert result.lock_fallback
        assert result.attempts == cal.OCC_MAX_RETRIES
        # all blocks end up on the destination, with the freshest data
        assert inode.blt.blocks_on(stack.tier_id("ssd")) == 16
        assert mux.read(handle, 0, 1) == bytes([0xEE])

    def test_lock_fallback_bounded(self, env):
        """§2.4: migration completes in finite time (bounded replication lag)."""
        stack, mux, handle = env
        inode = mux.ns.get(handle.ino)
        steps = {"n": 0}
        task = mux.engine.submit(order(stack, handle))

        def hostile_write(step):
            steps["n"] += 1
            if inode.migration_active:
                mux.write(handle, 0, bytes([step % 251]))

        result = run_interleaved(task, hostile_write)
        assert not inode.migration_active
        assert not inode.locked
        assert inode.blt.blocks_on(stack.tier_id("pm")) == 0

    def test_reads_during_migration_consistent(self, env):
        stack, mux, handle = env
        expect = mux.read(handle, 0, 16 * BS)
        task = mux.engine.submit(order(stack, handle))

        def reader(step):
            assert mux.read(handle, 0, 16 * BS) == expect

        run_interleaved(task, reader)
        assert mux.read(handle, 0, 16 * BS) == expect

    def test_write_to_unrelated_file_no_conflict(self, env):
        stack, mux, handle = env
        other = mux.create("/other")
        task = mux.engine.submit(order(stack, handle))

        def unrelated(step):
            mux.write(other, 0, b"noise")

        result = run_interleaved(task, unrelated)
        assert result.conflicts == 0
        assert result.attempts == 1
        mux.close(other)

    def test_append_during_migration_not_lost(self, env):
        stack, mux, handle = env
        task = mux.engine.submit(order(stack, handle))

        def appender(step):
            if step == 0:
                mux.append(handle, b"GROWN")

        run_interleaved(task, appender)
        assert mux.getattr("/f").size == 16 * BS + 5
        assert mux.read(handle, 16 * BS, 5) == b"GROWN"


class TestEngineBookkeeping:
    def test_pair_stats_accumulate(self, env):
        stack, mux, handle = env
        mux.engine.migrate_now(order(stack, handle, count=8))
        pair = (stack.tier_id("pm"), stack.tier_id("ssd"))
        stats = mux.engine.pair_stats[pair]
        assert stats.bytes_moved == 8 * BS
        assert stats.busy_ns > 0
        assert stats.throughput_mb_s() > 0

    def test_supports_every_pair(self, env):
        stack, mux, handle = env
        ids = mux.tier_ids()
        for src in ids:
            for dst in ids:
                assert mux.engine.supports(src, dst) == (src != dst)

    def test_engine_counters(self, env):
        stack, mux, handle = env
        mux.engine.migrate_now(order(stack, handle))
        assert mux.engine.stats.get("migrations") == 1
        assert mux.engine.stats.get("blocks_moved") == 16

    def test_async_tick_progresses(self, env):
        stack, mux, handle = env
        mux.engine.submit(order(stack, handle))
        ticks = 0
        while mux.engine.tick():
            ticks += 1
        assert ticks > 0
        inode = mux.ns.get(handle.ino)
        assert inode.blt.blocks_on(stack.tier_id("ssd")) == 16
