"""Hard links and page-cache readahead."""

import pytest

from repro.errors import CrossDevice, FileExists, IsADirectory, NotSupported
from repro.vfs.interface import OpenFlags
from repro.vfs.vfs import VFS

BS = 4096


class TestHardLinks:
    def test_link_shares_data(self, any_fs):
        any_fs.write_file("/orig", b"shared bytes")
        any_fs.link("/orig", "/alias")
        assert any_fs.read_file("/alias") == b"shared bytes"
        # writes through one name are visible through the other
        handle = any_fs.open("/alias", OpenFlags.RDWR)
        any_fs.write(handle, 0, b"SHARED")
        any_fs.close(handle)
        assert any_fs.read_file("/orig")[:6] == b"SHARED"

    def test_nlink_counts(self, any_fs):
        any_fs.write_file("/orig", b"x")
        any_fs.link("/orig", "/alias")
        assert any_fs.getattr("/orig").nlink == 2
        assert any_fs.getattr("/alias").nlink == 2
        any_fs.unlink("/orig")
        assert any_fs.getattr("/alias").nlink == 1

    def test_data_survives_until_last_link(self, any_fs):
        any_fs.write_file("/orig", b"persist")
        any_fs.link("/orig", "/alias")
        free_with_data = any_fs.statfs().free_blocks
        any_fs.unlink("/orig")
        assert any_fs.read_file("/alias") == b"persist"
        assert any_fs.statfs().free_blocks == free_with_data
        any_fs.unlink("/alias")
        assert any_fs.statfs().free_blocks >= free_with_data

    def test_link_to_directory_rejected(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            any_fs.link("/d", "/alias")

    def test_link_over_existing_rejected(self, any_fs):
        any_fs.write_file("/a", b"")
        any_fs.write_file("/b", b"")
        with pytest.raises(FileExists):
            any_fs.link("/a", "/b")

    def test_same_inode_number(self, any_fs):
        any_fs.write_file("/orig", b"")
        any_fs.link("/orig", "/alias")
        assert any_fs.getattr("/orig").ino == any_fs.getattr("/alias").ino

    def test_links_survive_crash(self, ext4):
        ext4.write_file("/orig", b"linked")
        handle = ext4.open("/orig")
        ext4.fsync(handle)
        ext4.close(handle)
        ext4.link("/orig", "/alias")
        ext4.unlink("/orig")
        ext4.crash()
        ext4.recover()
        assert ext4.read_file("/alias") == b"linked"
        assert ext4.getattr("/alias").nlink == 1

    def test_vfs_link_same_fs(self, clock, nova, xfs):
        vfs = VFS(clock)
        vfs.mount("/pm", nova)
        vfs.mount("/ssd", xfs)
        vfs.write_file("/pm/a", b"1")
        vfs.link("/pm/a", "/pm/b")
        assert vfs.read_file("/pm/b") == b"1"
        with pytest.raises(CrossDevice):
            vfs.link("/pm/a", "/ssd/a")

    def test_mux_link_not_supported(self, stack):
        stack.mux.write_file("/f", b"")
        with pytest.raises(NotSupported):
            stack.mux.link("/f", "/g")


class TestReadahead:
    def test_sequential_reads_batch_device_io(self, ext4, hdd):
        handle = ext4.create("/f")
        ext4.write(handle, 0, bytes(64 * BS))
        ext4.fsync(handle)
        ext4.page_cache.drop_clean()
        ext4._readahead.clear()
        reads_before = hdd.stats.read_ops
        for fb in range(64):
            ext4.read(handle, fb * BS, BS)
        sequential_ios = hdd.stats.read_ops - reads_before
        assert sequential_ios < 20  # far fewer than 64 single-block reads
        ext4.close(handle)

    def test_random_reads_do_not_readahead(self, ext4, hdd):
        handle = ext4.create("/f")
        ext4.write(handle, 0, bytes(64 * BS))
        ext4.fsync(handle)
        ext4.page_cache.drop_clean()
        ext4._readahead.clear()
        before = hdd.stats.bytes_read
        order = [(i * 29) % 64 for i in range(16)]  # scattered
        for fb in order:
            ext4.read(handle, fb * BS, BS)
        # roughly one block per read: no wasted readahead
        assert hdd.stats.bytes_read - before <= 20 * BS
        ext4.close(handle)

    def test_sequential_faster_than_random_on_hdd(self, ext4, hdd, clock):
        handle = ext4.create("/f")
        ext4.write(handle, 0, bytes(128 * BS))
        ext4.fsync(handle)
        ext4.page_cache.drop_clean()
        ext4._readahead.clear()
        t0 = clock.now_ns
        for fb in range(128):
            ext4.read(handle, fb * BS, BS)
        sequential = clock.now_ns - t0
        ext4.page_cache.drop_clean()
        ext4._readahead.clear()
        t0 = clock.now_ns
        for i in range(128):
            ext4.read(handle, ((i * 37) % 128) * BS, BS)
        random = clock.now_ns - t0
        assert sequential < random / 2
        ext4.close(handle)

    def test_readahead_correctness(self, xfs):
        handle = xfs.create("/f")
        payload = b"".join(bytes([i % 251]) * BS for i in range(40))
        xfs.write(handle, 0, payload)
        xfs.fsync(handle)
        xfs.page_cache.drop_clean()
        xfs._readahead.clear()
        got = b"".join(xfs.read(handle, fb * BS, BS) for fb in range(40))
        assert got == payload
        xfs.close(handle)


class TestBackgroundReadahead:
    def _sequential_file(self, fs, nblocks=64):
        handle = fs.create("/f")
        payload = b"".join(bytes([i % 251]) * BS for i in range(nblocks))
        fs.write(handle, 0, payload)
        fs.fsync(handle)
        fs.page_cache.drop_clean()
        fs._readahead.clear()
        return handle, payload

    def test_off_by_default(self, ext4):
        assert ext4.readahead_background is False
        handle, _ = self._sequential_file(ext4)
        for fb in range(16):
            ext4.read(handle, fb * BS, BS)
        assert ext4.readahead_bg_blocks == 0
        ext4.close(handle)

    def test_speculative_tail_rides_background_channels(self, xfs, ssd, clock):
        xfs.readahead_background = True
        handle, payload = self._sequential_file(xfs)
        bg_before = ssd.timeline.background_ops
        got = b"".join(xfs.read(handle, fb * BS, BS) for fb in range(64))
        assert got == payload  # correctness survives the split fetch
        assert xfs.readahead_bg_blocks > 0
        assert ssd.timeline.background_ops > bg_before
        xfs.close(handle)

    def test_sequential_scan_faster_with_background_tail(self, clock):
        from repro.devices.hdd import HardDiskDrive
        from repro.fs.ext4 import Ext4FileSystem
        from repro.sim.clock import SimClock

        def scan_ns(background):
            local = SimClock()
            hdd = HardDiskDrive("h0", 64 * 1024 * 1024, local)
            fs = Ext4FileSystem("ext4", hdd, local)
            fs.readahead_background = background
            handle = fs.create("/f")
            fs.write(handle, 0, bytes(128 * BS))
            fs.fsync(handle)
            fs.page_cache.drop_clean()
            fs._readahead.clear()
            t0 = local.now_ns
            for fb in range(128):
                fs.read(handle, fb * BS, BS)
            fs.close(handle)
            return local.now_ns - t0

        foreground = scan_ns(False)
        overlapped = scan_ns(True)
        # the demand read no longer pays for the speculative tail, so the
        # foreground scan time drops even on a single-spindle device
        assert overlapped < foreground

    def test_random_reads_never_go_background(self, ext4, hdd):
        ext4.readahead_background = True
        handle, _ = self._sequential_file(ext4)
        bg_before = hdd.timeline.background_ops
        for i in range(16):
            ext4.read(handle, ((i * 29) % 64) * BS, BS)
        # window stays 1 on scattered reads: no speculative tail exists
        assert ext4.readahead_bg_blocks == 0
        assert hdd.timeline.background_ops == bg_before
        ext4.close(handle)

    def test_build_stack_flag(self):
        from repro.stack import build_stack

        stack = build_stack(readahead_background=True)
        assert stack.filesystems["ssd"].readahead_background is True
        assert stack.filesystems["hdd"].readahead_background is True
        # NOVA on byte-addressable PM has no block readahead to move
        assert not getattr(stack.filesystems["pm"], "readahead_background", False)
        default = build_stack()
        assert default.filesystems["ssd"].readahead_background is False
