"""Unit tests for the simulated devices (base, PM, SSD, HDD)."""

import pytest

from dataclasses import replace

from repro.devices.base import Device
from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import CACHE_LINE, PersistentMemoryDevice
from repro.devices.profile import (
    OPTANE_PMEM_200,
    OPTANE_SSD_P4800X,
    SEAGATE_EXOS_X18,
    DeviceKind,
)
from repro.devices.ssd import SolidStateDrive
from repro.errors import DeviceError
from repro.sim.clock import SimClock

MIB = 1024 * 1024


class TestBaseDevice:
    def make(self, clock=None):
        clock = clock or SimClock()
        return Device("d0", OPTANE_SSD_P4800X, 4 * MIB, clock), clock

    def test_write_read_roundtrip(self):
        dev, _ = self.make()
        dev.write_blocks(3, b"x" * 4096)
        assert dev.read_blocks(3) == b"x" * 4096

    def test_unwritten_reads_zero(self):
        dev, _ = self.make()
        assert dev.read_blocks(5) == bytes(4096)

    def test_multi_block_io(self):
        dev, _ = self.make()
        payload = bytes(range(256)) * 32  # 2 blocks
        dev.write_blocks(10, payload)
        assert dev.read_blocks(10, 2) == payload

    def test_out_of_range_read(self):
        dev, _ = self.make()
        with pytest.raises(DeviceError):
            dev.read_blocks(dev.num_blocks)

    def test_out_of_range_write(self):
        dev, _ = self.make()
        with pytest.raises(DeviceError):
            dev.write_blocks(dev.num_blocks - 1, bytes(8192))

    def test_unaligned_write_rejected(self):
        dev, _ = self.make()
        with pytest.raises(DeviceError):
            dev.write_blocks(0, b"short")

    def test_time_charged(self):
        dev, clock = self.make()
        before = clock.now_ns
        dev.write_blocks(0, bytes(4096))
        assert clock.now_ns > before

    def test_stats_accounting(self):
        dev, _ = self.make()
        dev.write_blocks(0, bytes(4096))
        dev.read_blocks(0)
        assert dev.stats.write_ops == 1
        assert dev.stats.read_ops == 1
        assert dev.stats.bytes_written == 4096
        assert dev.stats.bytes_read == 4096

    def test_discard_block(self):
        dev, _ = self.make()
        dev.write_blocks(1, b"y" * 4096)
        dev.discard_block(1)
        assert dev.read_blocks(1) == bytes(4096)
        assert dev.materialized_blocks == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Device("bad", OPTANE_SSD_P4800X, 4097, SimClock())

    def test_peek_block_free(self):
        dev, clock = self.make()
        dev.write_blocks(2, b"z" * 4096)
        t = clock.now_ns
        assert dev.peek_block(2) == b"z" * 4096
        assert clock.now_ns == t  # no time charged


class TestPersistentMemory:
    def make(self):
        clock = SimClock()
        return PersistentMemoryDevice("pm0", 4 * MIB, clock), clock

    def test_byte_granular_store_load(self):
        pm, _ = self.make()
        pm.store(100, b"hello")
        assert pm.load(100, 5) == b"hello"

    def test_store_across_block_boundary(self):
        pm, _ = self.make()
        pm.store(4090, b"0123456789")
        assert pm.load(4090, 10) == b"0123456789"

    def test_unflushed_lines_tracked(self):
        pm, _ = self.make()
        pm.store(0, bytes(CACHE_LINE * 2))
        assert pm.unflushed_lines == 2
        pm.flush_range(0, CACHE_LINE)
        assert pm.unflushed_lines == 1
        pm.flush_range(CACHE_LINE, CACHE_LINE)
        assert pm.unflushed_lines == 0

    def test_flush_charges_per_line(self):
        pm, clock = self.make()
        pm.store(0, bytes(4096))
        t0 = clock.now_ns
        pm.flush_range(0, 4096)
        cost_64_lines = clock.now_ns - t0
        pm.store(0, bytes(64))
        t1 = clock.now_ns
        pm.flush_range(0, 64)
        cost_1_line = clock.now_ns - t1
        assert cost_64_lines == 64 * cost_1_line

    def test_load_out_of_range(self):
        pm, _ = self.make()
        with pytest.raises(DeviceError):
            pm.load(pm.capacity_bytes - 1, 2)

    def test_block_interface_also_works(self):
        pm, _ = self.make()
        pm.write_blocks(0, b"a" * 4096)
        assert pm.load(0, 4) == b"aaaa"

    def test_faster_than_ssd_per_small_read(self):
        pm, pm_clock = self.make()
        ssd = SolidStateDrive("s", 4 * MIB, SimClock())
        t0 = pm_clock.now_ns
        pm.load(0, 64)
        pm_cost = pm_clock.now_ns - t0
        t0 = ssd.clock.now_ns
        ssd.read_blocks(0)
        ssd_cost = ssd.clock.now_ns - t0
        assert pm_cost < ssd_cost / 10


class TestSolidStateDrive:
    def make(self):
        clock = SimClock()
        return SolidStateDrive("s0", 64 * MIB, clock), clock

    def test_write_buffer_absorbs_bursts(self):
        ssd, clock = self.make()
        t0 = clock.now_ns
        ssd.write_blocks(0, bytes(4096))
        buffered_cost = clock.now_ns - t0
        # fill the buffer, then writes pay full media cost
        while ssd.buffered_bytes + 4096 <= ssd.profile.write_buffer_bytes:
            ssd.write_blocks(1, bytes(4096))
        t0 = clock.now_ns
        ssd.write_blocks(2, bytes(4096))
        full_cost = clock.now_ns - t0
        assert full_cost > buffered_cost

    def test_flush_drains_buffer(self):
        ssd, clock = self.make()
        ssd.write_blocks(0, bytes(4096 * 4))
        assert ssd.buffered_bytes > 0
        t0 = clock.now_ns
        ssd.flush()
        assert ssd.buffered_bytes == 0
        assert clock.now_ns > t0

    def test_flush_empty_is_free(self):
        ssd, clock = self.make()
        t0 = clock.now_ns
        ssd.flush()
        assert clock.now_ns == t0

    def test_kind(self):
        ssd, _ = self.make()
        assert ssd.profile.kind is DeviceKind.SOLID_STATE


class TestHardDiskDrive:
    def make(self):
        clock = SimClock()
        return HardDiskDrive("h0", 256 * MIB, clock), clock

    def test_sequential_faster_than_random(self):
        hdd, clock = self.make()
        # sequential: 64 consecutive blocks
        hdd.read_blocks(0)  # position the head
        t0 = clock.now_ns
        for i in range(1, 65):
            hdd.read_blocks(i)
        sequential = clock.now_ns - t0
        # random: 64 scattered blocks
        t0 = clock.now_ns
        for i in range(64):
            hdd.read_blocks((i * 997) % hdd.num_blocks)
        random = clock.now_ns - t0
        assert random > sequential * 5

    def test_head_tracking(self):
        hdd, _ = self.make()
        hdd.read_blocks(10, 4)
        assert hdd.head_block == 14

    def test_seek_counted(self):
        hdd, _ = self.make()
        hdd.read_blocks(0)
        hdd.read_blocks(1000)
        assert hdd.stats.seeks >= 1

    def test_no_seek_when_contiguous(self):
        hdd, _ = self.make()
        hdd.read_blocks(5)
        seeks = hdd.stats.seeks
        hdd.read_blocks(6)
        assert hdd.stats.seeks == seeks

    def test_long_seek_costs_more_than_short(self):
        hdd, clock = self.make()
        hdd.read_blocks(0)
        t0 = clock.now_ns
        hdd.read_blocks(10)  # short seek
        short = clock.now_ns - t0
        hdd.read_blocks(0)
        t0 = clock.now_ns
        hdd.read_blocks(hdd.num_blocks - 1)  # full stroke
        longer = clock.now_ns - t0
        assert longer > short


class TestProfiles:
    def test_transfer_time(self):
        ns = OPTANE_PMEM_200.transfer_ns(30_000_000_000, write=False)
        assert ns == pytest.approx(1_000_000_000, rel=0.01)

    def test_catalog_ordering(self):
        assert OPTANE_PMEM_200.read_latency_ns < OPTANE_SSD_P4800X.read_latency_ns
        assert OPTANE_SSD_P4800X.read_latency_ns < SEAGATE_EXOS_X18.seek_latency_ns


class TestDeviceTimeline:
    def test_serial_path_equals_advance(self):
        # key no-op property: with no overlap, _occupy degenerates to a
        # plain advance, so the serial timing model is bit-identical
        clock_a, clock_b = SimClock(), SimClock()
        dev = Device("d0", OPTANE_SSD_P4800X, 4 * MIB, clock_a)
        ref = Device("d1", OPTANE_SSD_P4800X, 4 * MIB, clock_b)
        for i in range(8):
            dev.write_blocks(i, bytes(4096))
            ref.write_blocks(i, bytes(4096))
        assert clock_a.now_ns == clock_b.now_ns

    def test_overlapped_requests_use_channels(self):
        clock = SimClock()
        dev = Device("d0", OPTANE_SSD_P4800X, 4 * MIB, clock)
        assert dev.timeline.nchannels == 8
        completions = []
        for i in range(4):
            clock.push_frame(start_ns=0)
            dev.read_blocks(i)
            completions.append(clock.pop_frame())
        # four requests from t=0 land on four distinct channels: all
        # complete at the single-request latency, none queue
        assert len(set(completions)) == 1
        assert dev.timeline.wait_ns == 0
        assert dev.timeline.foreground_ops == 4

    def test_single_channel_serializes(self):
        clock = SimClock()
        dev = Device("d0", SEAGATE_EXOS_X18, 4 * MIB, clock)
        assert dev.timeline.nchannels == 1
        completions = []
        for i in range(3):
            clock.push_frame(start_ns=0)
            dev.read_blocks(i)
            completions.append(clock.pop_frame())
        # one spindle: concurrent submissions queue behind each other
        assert completions[0] < completions[1] < completions[2]
        assert dev.timeline.wait_ns > 0
        assert dev.timeline.max_queued >= 2

    def test_queue_overflow_waits(self):
        clock = SimClock()
        dev = Device("d0", OPTANE_SSD_P4800X, 4 * MIB, clock)
        completions = []
        for i in range(dev.timeline.nchannels + 1):
            clock.push_frame(start_ns=0)
            dev.read_blocks(i)
            completions.append(clock.pop_frame())
        # request nchannels+1 had to wait for a channel to free up
        assert max(completions) > min(completions)
        assert dev.timeline.wait_ns > 0

    def test_background_restricted_to_reserved_channels(self):
        clock = SimClock()
        dev = Device("d0", OPTANE_SSD_P4800X, 4 * MIB, clock)
        nbg = max(1, dev.timeline.nchannels // 4)
        completions = []
        for i in range(2 * nbg):
            clock.push_frame(start_ns=0, background=True)
            dev.read_blocks(i)
            completions.append(clock.pop_frame())
        # 2*nbg background requests share only nbg channels: they queue
        assert max(completions) > min(completions)
        assert dev.timeline.background_ops == 2 * nbg
        # ...while the foreground channels are still completely free
        begin, _ = dev.timeline.acquire(0, 100, background=False)
        assert begin == 0

    def test_background_on_single_channel_device(self):
        clock = SimClock()
        dev = Device("d0", SEAGATE_EXOS_X18, 4 * MIB, clock)
        clock.push_frame(start_ns=0, background=True)
        dev.read_blocks(0)
        done = clock.pop_frame()
        assert done > 0  # the one spindle serves background too
        assert dev.timeline.background_ops == 1

    def test_snapshot_and_utilization(self):
        clock = SimClock()
        dev = Device("d0", OPTANE_SSD_P4800X, 4 * MIB, clock)
        dev.read_blocks(0)
        snap = dev.timeline.snapshot()
        assert snap["channels"] == 8
        assert snap["fg_ops"] == 1
        assert snap["busy_ns"] > 0
        util = dev.timeline.utilization(clock.now_ns)
        assert 0.0 < util <= 1.0


class TestSaturationKnee:
    """Queue-depth saturation knee: flat below the knee, convex past it."""

    def _kneed_ssd(self, clock, knee_depth=4, knee_penalty=0.5):
        profile = replace(
            OPTANE_SSD_P4800X, knee_depth=knee_depth, knee_penalty=knee_penalty
        )
        return Device("d0", profile, 4 * MIB, clock)

    def test_stock_profiles_carry_calibrated_knees(self):
        # the shipped profiles model each device's published loaded-latency
        # curve, so the knee is on by default with spec-sheet parameters;
        # knee_depth=0 in a custom profile still opts out entirely
        from repro.devices.profile import OPTANE_PMEM_200, SEAGATE_EXOS_X18

        for profile in (OPTANE_PMEM_200, OPTANE_SSD_P4800X, SEAGATE_EXOS_X18):
            dev = Device("d0", profile, 4 * MIB, SimClock())
            assert dev.timeline.knee_depth == profile.knee_depth > 0
            assert dev.timeline.knee_penalty == profile.knee_penalty > 0.0
        flat = replace(OPTANE_SSD_P4800X, knee_depth=0, knee_penalty=0.0)
        dev = Device("d1", flat, 4 * MIB, SimClock())
        assert dev.timeline.knee_depth == 0
        assert "knee_ops" not in dev.timeline.snapshot()

    def test_flat_path_bit_identical_with_knee_disabled(self):
        # a knee at depth 0 must not perturb a single nanosecond, even
        # under overlapped submissions that build real backlog
        clock_a, clock_b = SimClock(), SimClock()
        plain = Device(
            "d0",
            replace(OPTANE_SSD_P4800X, knee_depth=0, knee_penalty=0.0),
            4 * MIB,
            clock_a,
        )
        kneed = self._kneed_ssd(clock_b, knee_depth=0, knee_penalty=0.5)
        done_a, done_b = [], []
        for i in range(20):
            clock_a.push_frame(start_ns=0)
            plain.read_blocks(i)
            done_a.append(clock_a.pop_frame())
            clock_b.push_frame(start_ns=0)
            kneed.read_blocks(i)
            done_b.append(clock_b.pop_frame())
        assert done_a == done_b
        assert plain.timeline.snapshot() == kneed.timeline.snapshot()

    def test_below_knee_costs_flat(self):
        clock = SimClock()
        dev = self._kneed_ssd(clock, knee_depth=8)
        ref_clock = SimClock()
        ref = Device("r0", OPTANE_SSD_P4800X, 4 * MIB, ref_clock)
        for i in range(4):  # backlog never reaches 8
            clock.push_frame(start_ns=0)
            dev.read_blocks(i)
            clock.pop_frame()
            ref_clock.push_frame(start_ns=0)
            ref.read_blocks(i)
            ref_clock.pop_frame()
        assert dev.timeline.knee_ops == 0
        assert dev.timeline.busy_ns == ref.timeline.busy_ns

    def test_past_knee_service_time_inflates_convexly(self):
        clock = SimClock()
        dev = self._kneed_ssd(clock, knee_depth=2, knee_penalty=0.5)
        completions = []
        for i in range(8):
            clock.push_frame(start_ns=0)
            dev.read_blocks(i)
            completions.append(clock.pop_frame())
        assert dev.timeline.knee_ops > 0
        assert dev.timeline.knee_extra_ns > 0
        # convexity: each successive completion gap grows once the knee
        # engages (quadratic inflation dominates the constant service time)
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        tail = [g for g in gaps if g > 0][-3:]
        assert tail == sorted(tail)
        snap = dev.timeline.snapshot()
        assert snap["knee_ops"] == dev.timeline.knee_ops
        assert snap["knee_extra_ns"] == dev.timeline.knee_extra_ns

    def test_backlog_drains_knee_releases(self):
        clock = SimClock()
        dev = self._kneed_ssd(clock, knee_depth=2, knee_penalty=0.5)
        for i in range(6):
            clock.push_frame(start_ns=0)
            dev.read_blocks(i)
            clock.pop_frame()
        engaged = dev.timeline.knee_ops
        assert engaged > 0
        # far in the future the backlog has fully drained: flat again
        future = max(dev.timeline.busy_until) + 1_000_000
        clock.advance_to(future)
        dev.read_blocks(0)
        assert dev.timeline.knee_ops == engaged

    def test_build_stack_profile_override(self):
        from repro.stack import build_stack

        profile = replace(OPTANE_SSD_P4800X, knee_depth=4, knee_penalty=0.25)
        stack = build_stack(profiles={"ssd": profile})
        assert stack.devices["ssd"].timeline.knee_depth == 4
        # un-overridden tiers keep their profile's calibrated knee
        assert stack.devices["pm"].timeline.knee_depth == OPTANE_PMEM_200.knee_depth

    def test_build_stack_rejects_unknown_override_tier(self):
        from repro.errors import InvalidArgument
        from repro.stack import build_stack

        with pytest.raises(InvalidArgument):
            build_stack(tiers=["pm"], profiles={"ssd": OPTANE_SSD_P4800X})
