"""Deficit round-robin fairness between foreground streams (§4, QoS).

DRR (Shreedhar & Varghese) divides the shared dispatch capacity evenly
among the streams actually competing at each instant — unlike the token
buckets already in :mod:`repro.core.qos`, which cap each class in
isolation.  These tests pin down the unit arbiter (deficit math, idle
amnesty, round pacing) and the QoS integration (opt-in invariance,
composition with quotas, trace counters).
"""

import math

import pytest

from repro.core.qos import IoClass, QosManager
from repro.core.scheduler import DeficitRoundRobin
from repro.errors import InvalidArgument
from repro.sim.clock import SimClock
from repro.stack import build_stack

KIB = 1024
MIB = 1024 * KIB
QUANTUM = 64 * KIB
RATE = 1e9  # 1 GB/s shared dispatch


class TestDrrArbiter:
    def test_lone_stream_rides_free(self):
        drr = DeficitRoundRobin(QUANTUM, RATE)
        now = 0
        for _ in range(32):
            # ops within one quantum never wait when nobody competes
            assert drr.account("solo", QUANTUM, now) == 0
            now += 1000
        snap = drr.snapshot()["solo"]
        assert snap["rounds_waited"] == 0
        assert snap["defer_ns"] == 0
        assert snap["bytes"] == 32 * QUANTUM

    def test_oversized_op_waits_whole_rounds(self):
        drr = DeficitRoundRobin(QUANTUM, RATE)
        # 5 quanta of work with 1 quantum of credit → 4 extra rounds,
        # each round = active * quantum / rate (one active stream)
        delay = drr.account("big", 5 * QUANTUM, 0)
        round_ns = QUANTUM * 1e9 / RATE
        assert delay == round(4 * round_ns)
        snap = drr.snapshot()["big"]
        assert snap["rounds_waited"] == 4
        assert snap["deficit"] == 0  # 4 quanta granted, 5 spent, 1 held

    def test_two_busy_streams_split_evenly(self):
        drr = DeficitRoundRobin(QUANTUM, RATE)
        now = 0
        for _ in range(16):
            # both submit before either drains: genuinely concurrent
            drr.account("a", 2 * QUANTUM, now)
            drr.account("b", 2 * QUANTUM, now)
            now += 1  # far less than the deferrals just charged
        snap = drr.snapshot()
        assert snap["a"]["rounds_waited"] == snap["b"]["rounds_waited"] > 0
        assert snap["a"]["defer_ns"] > 0
        # symmetric offered load → symmetric treatment, to the nanosecond
        assert abs(snap["a"]["defer_ns"] - snap["b"]["defer_ns"]) <= snap[
            "a"
        ]["rounds_waited"] * QUANTUM  # slack: b sees a busy, a started solo

    def test_competition_slows_the_round(self):
        # the SAME oversized op pays more when a competitor keeps the
        # dispatcher busy: round_ns scales with active streams
        drr = DeficitRoundRobin(QUANTUM, RATE)
        alone = drr.account("x", 3 * QUANTUM, 0)

        drr2 = DeficitRoundRobin(QUANTUM, RATE)
        drr2.account("busy", 100 * QUANTUM, 0)  # long-running competitor
        contended = drr2.account("x", 3 * QUANTUM, 0)
        assert contended > alone

    def test_idle_stream_gets_fresh_quantum(self):
        drr = DeficitRoundRobin(QUANTUM, RATE)
        delay = drr.account("bursty", 3 * QUANTUM, 0)
        assert delay > 0
        # wait until the queued work drains, then a small op is free:
        # classic DRR zeroes the deficit on empty rather than banking it
        later = delay + 1
        assert drr.account("bursty", KIB, later) == 0

    def test_implicit_registration_and_snapshot_shape(self):
        drr = DeficitRoundRobin(QUANTUM, RATE)
        drr.account("zeta", KIB, 0)
        drr.account("alpha", KIB, 0)
        snap = drr.snapshot()
        assert list(snap) == ["alpha", "zeta"]  # sorted, deterministic
        assert set(snap["alpha"]) == {
            "deficit", "bytes", "ops", "rounds_waited", "defer_ns",
        }

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(InvalidArgument):
            DeficitRoundRobin(0, RATE)
        with pytest.raises(InvalidArgument):
            DeficitRoundRobin(QUANTUM, 0.0)


class TestQosIntegration:
    def _manager(self):
        clock = SimClock()
        qos = QosManager(clock)
        qos.register(IoClass("batch"))
        qos.register(IoClass("latency"))
        return clock, qos

    def _tagged(self, stack, qos, path, class_name):
        handle = stack.mux.create(path)
        qos.tag(handle, class_name)
        return handle

    def test_off_by_default_charge_unchanged(self):
        clock, qos = self._manager()
        handle_like = type("H", (), {"private": {"qos_class": "batch"}})()
        before = clock.now_ns
        assert qos.charge(handle_like, 10 * MIB) == 0
        assert clock.now_ns == before
        assert qos.drr_snapshot() == {}

    def test_enable_fair_share_charges_the_clock(self):
        clock, qos = self._manager()
        qos.enable_fair_share(QUANTUM, RATE)
        batch = type("H", (), {"private": {"qos_class": "batch"}})()
        latency = type("H", (), {"private": {"qos_class": "latency"}})()
        # saturate batch, then a latency op must be deferred but bounded
        delay_b = qos.charge(batch, 8 * QUANTUM)
        assert delay_b > 0
        assert clock.now_ns == delay_b
        delay_l = qos.charge(latency, 2 * QUANTUM)
        assert delay_l > 0
        snap = qos.drr_snapshot()
        assert snap["batch"]["defer_ns"] == delay_b
        assert snap["latency"]["defer_ns"] == delay_l
        assert qos.stats.get("drr_defer_ns.batch") == delay_b
        assert qos.stats.get("drr_defer_ns.latency") == delay_l

    def test_composes_with_token_bucket(self):
        clock = SimClock()
        qos = QosManager(clock)
        qos.register(IoClass("capped", quota_bytes_per_sec=1 * MIB))
        qos.enable_fair_share(QUANTUM, RATE)
        handle = type("H", (), {"private": {"qos_class": "capped"}})()
        # burst = 1 MiB; the second MiB overdraws the bucket AND spills
        # past the DRR quantum — both delays are charged, additively
        qos.charge(handle, 1 * MIB)
        throttled_0 = qos.stats.get("throttle_ns.capped")
        deferred_0 = qos.stats.get("drr_defer_ns.capped")
        delay = qos.charge(handle, 1 * MIB)
        throttled = qos.stats.get("throttle_ns.capped") - throttled_0
        deferred = qos.stats.get("drr_defer_ns.capped") - deferred_0
        assert throttled > 0 and deferred > 0
        assert delay == throttled + deferred

    def test_fair_share_through_a_full_stack(self):
        """End-to-end: two tagged streams through build_stack's mux; the
        DRR snapshot that bench trace prints reflects both."""
        stack = build_stack(
            capacities={"pm": 8 * MIB, "ssd": 16 * MIB, "hdd": 64 * MIB},
            enable_cache=False,
        )
        qos = stack.mux.enable_qos()
        qos.register(IoClass("batch"))
        qos.register(IoClass("latency"))
        qos.enable_fair_share(QUANTUM, RATE)
        batch = self._tagged(stack, qos, "/b", "batch")
        latency = self._tagged(stack, qos, "/l", "latency")
        for i in range(8):
            stack.mux.write(batch, i * 256 * KIB, bytes(256 * KIB))
            stack.mux.write(latency, i * 8 * KIB, bytes(8 * KIB))
        snap = qos.drr_snapshot()
        assert snap["batch"]["bytes"] == 8 * 256 * KIB
        assert snap["latency"]["bytes"] == 8 * 8 * KIB
        # the heavy stream absorbs the deferral; the light one stays
        # within its per-round quantum and is never penalized for the
        # batch stream's appetite
        assert snap["batch"]["rounds_waited"] > 0
        assert snap["latency"]["rounds_waited"] == 0
        stack.mux.close(batch)
        stack.mux.close(latency)

    def test_determinism(self):
        def run():
            drr = DeficitRoundRobin(QUANTUM, RATE)
            now = 0
            for i in range(64):
                now += drr.account(f"s{i % 3}", (i % 7 + 1) * 16 * KIB, now)
            return drr.snapshot()

        assert run() == run()
