"""Unit tests for the deterministic RNG."""

import pytest

from repro.sim.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [
            b.randint(0, 10**9) for _ in range(5)
        ]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(42).fork("workload")
        b = DeterministicRng(42).fork("workload")
        assert a.randint(0, 10**9) == b.randint(0, 10**9)

    def test_fork_labels_independent(self):
        base = DeterministicRng(42)
        a = base.fork("x")
        b = base.fork("y")
        assert [a.randint(0, 10**9) for _ in range(4)] != [
            b.randint(0, 10**9) for _ in range(4)
        ]


class TestHelpers:
    def test_sample_offsets_range(self):
        rng = DeterministicRng(7)
        offsets = rng.sample_offsets(1000, 100, align=8)
        assert len(offsets) == 100
        assert all(0 <= off < 1000 for off in offsets)
        assert all(off % 8 == 0 for off in offsets)

    def test_sample_offsets_bad_span(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).sample_offsets(0, 1)

    def test_sample_offsets_bad_align(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).sample_offsets(10, 1, align=0)

    def test_bytes(self):
        rng = DeterministicRng(3)
        data = rng.bytes(64)
        assert len(data) == 64
        assert data == DeterministicRng(3).bytes(64)

    def test_choice_and_shuffle(self):
        rng = DeterministicRng(5)
        items = list(range(10))
        assert rng.choice(items) in items
        rng.shuffle(items)
        assert sorted(items) == list(range(10))

    def test_seed_property(self):
        assert DeterministicRng(9).seed == 9
