"""Torn-write recovery for the metadata journal.

The write-ahead contract says a transaction is durable exactly when its
commit block lands.  These tests tear commits two ways — via the fault
injector's prefix materialization and via hand-scrambled frames — and
check the recovery scan treats every malformed tail as end-of-log instead
of replaying garbage.
"""

import pickle
import struct

import pytest

from repro.devices.base import Device
from repro.devices.faults import FaultConfig, FaultInjector
from repro.devices.profile import OPTANE_SSD_P4800X
from repro.errors import DeviceIoError
from repro.fscommon.journal import _HEADER, _TRAILER, COMMIT_MAGIC, MAGIC, Journal
from repro.sim.clock import SimClock
from repro.sim.rng import DeterministicRng

MIB = 1024 * 1024


@pytest.fixture
def device():
    return Device("j0", OPTANE_SSD_P4800X, 4 * MIB, SimClock())


@pytest.fixture
def journal(device):
    return Journal(device, start_block=0, num_blocks=64)


def commit(journal, seq_label):
    txn = journal.begin()
    txn.add("link", parent=1, name=seq_label, ino=2)
    txn.commit()


class TestInjectedTornWrites:
    def test_torn_multiblock_commit_is_not_recovered(self, device, journal):
        commit(journal, "first")  # small txn: lands whole
        device.set_fault_injector(
            FaultInjector("j0", FaultConfig(torn_write_p=1.0), DeterministicRng(3))
        )
        txn = journal.begin()
        # payload spans several blocks so the tear can land mid-frame
        txn.add("blob", data=b"x" * (3 * device.block_size))
        with pytest.raises(DeviceIoError):
            txn.commit()
        device.set_fault_injector(None)

        fresh = Journal(device, start_block=0, num_blocks=64)
        recovered = fresh.recover()
        assert len(recovered) == 1  # the torn txn never committed
        assert recovered[0][0][1]["name"] == "first"

    def test_appends_continue_after_torn_recovery(self, device, journal):
        commit(journal, "first")
        device.set_fault_injector(
            FaultInjector("j0", FaultConfig(torn_write_p=1.0), DeterministicRng(3))
        )
        txn = journal.begin()
        txn.add("blob", data=b"x" * (3 * device.block_size))
        with pytest.raises(DeviceIoError):
            txn.commit()
        device.set_fault_injector(None)

        fresh = Journal(device, start_block=0, num_blocks=64)
        fresh.recover()
        commit(fresh, "second")
        again = Journal(device, start_block=0, num_blocks=64).recover()
        assert [t[0][1]["name"] for t in again] == ["first", "second"]


def write_frame(device, offset_block, seq, payload, trailer=COMMIT_MAGIC):
    """Hand-assemble a journal frame (possibly malformed) on the device."""
    body_len = _HEADER.size + len(payload) + _TRAILER.size
    blocks = -(-body_len // device.block_size)
    frame = bytearray(blocks * device.block_size)
    _HEADER.pack_into(frame, 0, MAGIC, seq, len(payload))
    frame[_HEADER.size : _HEADER.size + len(payload)] = payload
    _TRAILER.pack_into(frame, _HEADER.size + len(payload), trailer)
    device.write_blocks(offset_block, bytes(frame))
    return blocks


class TestGarbagePayloads:
    """A tear that preserves the framing but scrambles the payload."""

    def test_unpicklable_payload_ends_the_log(self, device, journal):
        commit(journal, "good")
        offset = journal._head
        write_frame(device, offset, seq=2, payload=b"\xff" * 100)
        recovered = Journal(device, start_block=0, num_blocks=64).recover()
        assert len(recovered) == 1

    def test_picklable_garbage_ends_the_log(self, device, journal):
        commit(journal, "good")
        offset = journal._head
        # unpickles fine, but is not a list of (str, dict) records
        write_frame(device, offset, seq=2, payload=pickle.dumps([1, 2, 3]))
        recovered = Journal(device, start_block=0, num_blocks=64).recover()
        assert len(recovered) == 1

    def test_wrong_record_shape_ends_the_log(self, device, journal):
        commit(journal, "good")
        offset = journal._head
        bad = pickle.dumps([("kind", {"k": 1}), ("orphan",)])  # 1-tuple
        write_frame(device, offset, seq=2, payload=bad)
        recovered = Journal(device, start_block=0, num_blocks=64).recover()
        assert len(recovered) == 1

    def test_garbage_does_not_shadow_later_generations(self, device, journal):
        """After recovery stops at garbage, new commits overwrite it."""
        commit(journal, "good")
        offset = journal._head
        write_frame(device, offset, seq=2, payload=pickle.dumps({"not": "records"}))
        fresh = Journal(device, start_block=0, num_blocks=64)
        fresh.recover()
        commit(fresh, "after")
        recovered = Journal(device, start_block=0, num_blocks=64).recover()
        assert [t[0][1]["name"] for t in recovered] == ["good", "after"]

    def test_valid_records_structural_check(self):
        valid = Journal._valid_records
        assert valid([("k", {"a": 1})])
        assert valid([])
        assert not valid("nope")
        assert not valid([("k", {"a": 1}), (1, {})])
        assert not valid([("k", ["not", "a", "dict"])])
        assert not valid([("k",)])
