"""Shared fixtures: fresh devices, file systems and stacks per test."""

from __future__ import annotations

import pytest

from repro.devices.hdd import HardDiskDrive
from repro.devices.pm import PersistentMemoryDevice
from repro.devices.ssd import SolidStateDrive
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem
from repro.fs.xfs import XfsFileSystem
from repro.sim.clock import SimClock
from repro.stack import build_stack
from repro.strata.fs import StrataFileSystem

MIB = 1024 * 1024


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def pm(clock) -> PersistentMemoryDevice:
    return PersistentMemoryDevice("pm0", 64 * MIB, clock)


@pytest.fixture
def ssd(clock) -> SolidStateDrive:
    return SolidStateDrive("ssd0", 128 * MIB, clock)


@pytest.fixture
def hdd(clock) -> HardDiskDrive:
    return HardDiskDrive("hdd0", 256 * MIB, clock)


@pytest.fixture
def nova(clock, pm) -> NovaFileSystem:
    return NovaFileSystem("nova", pm, clock)


@pytest.fixture
def xfs(clock, ssd) -> XfsFileSystem:
    return XfsFileSystem("xfs", ssd, clock)


@pytest.fixture
def ext4(clock, hdd) -> Ext4FileSystem:
    return Ext4FileSystem("ext4", hdd, clock)


@pytest.fixture(params=["nova", "xfs", "ext4"])
def any_fs(request, nova, xfs, ext4):
    """Parametrized fixture running a test on every native file system."""
    return {"nova": nova, "xfs": xfs, "ext4": ext4}[request.param]


@pytest.fixture
def strata(clock, pm, ssd, hdd) -> StrataFileSystem:
    return StrataFileSystem("strata", pm, ssd, hdd, clock)


@pytest.fixture
def stack():
    """Default 3-tier Mux stack (small capacities for test speed)."""
    return build_stack(
        capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB}
    )


@pytest.fixture
def stack_nocache():
    return build_stack(
        capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB},
        enable_cache=False,
    )
