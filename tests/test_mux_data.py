"""Mux data path: split I/O, block-granular tier routing, sparse offsets."""

import pytest

from repro.core.policy import MigrationOrder
from repro.errors import InvalidArgument
from repro.vfs.interface import OpenFlags

BS = 4096


@pytest.fixture
def mux(stack):
    return stack.mux


class TestBasicIo:
    def test_roundtrip(self, mux):
        handle = mux.create("/f")
        mux.write(handle, 0, b"hello mux")
        assert mux.read(handle, 0, 9) == b"hello mux"
        mux.close(handle)

    def test_read_past_eof_clamped(self, mux):
        handle = mux.create("/f")
        mux.write(handle, 0, b"abc")
        assert mux.read(handle, 0, 100) == b"abc"
        assert mux.read(handle, 5, 10) == b""
        mux.close(handle)

    def test_sparse_holes_zero(self, mux):
        handle = mux.create("/f")
        mux.write(handle, 10 * BS, b"tail")
        assert mux.read(handle, 0, 8) == bytes(8)
        assert mux.read(handle, 10 * BS, 4) == b"tail"
        mux.close(handle)

    def test_append_flag(self, mux):
        mux.write_file("/f", b"head")
        handle = mux.open("/f", OpenFlags.RDWR | OpenFlags.APPEND)
        mux.write(handle, 0, b"+tail")
        assert mux.read(handle, 0, 9) == b"head+tail"
        mux.close(handle)

    def test_truncate_shrink_grow(self, mux):
        handle = mux.create("/f")
        mux.write(handle, 0, b"x" * 100)
        mux.truncate(handle, 10)
        assert mux.getattr("/f").size == 10
        mux.write(handle, 20, b"y")
        assert mux.read(handle, 0, 21) == b"x" * 10 + bytes(10) + b"y"
        mux.close(handle)

    def test_bad_args(self, mux):
        handle = mux.create("/f")
        with pytest.raises(InvalidArgument):
            mux.read(handle, -1, 1)
        with pytest.raises(InvalidArgument):
            mux.write(handle, -5, b"x")
        with pytest.raises(InvalidArgument):
            mux.truncate(handle, -1)
        mux.close(handle)

    def test_large_write_roundtrip(self, mux):
        handle = mux.create("/f")
        payload = bytes(range(256)) * 64  # 16 KiB
        mux.write(handle, 123, payload)
        assert mux.read(handle, 123, len(payload)) == payload
        mux.close(handle)


class TestBltRouting:
    def test_blt_tracks_written_blocks(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(4 * BS))
        inode = mux.ns.get(handle.ino)
        assert inode.blt.mapped_blocks() == 4
        assert inode.blt.tiers_used() == [stack.tier_id("pm")]
        mux.close(handle)

    def test_reads_cross_tier_boundary(self, stack):
        """A file striped across two tiers must read back merged."""
        mux = stack.mux
        handle = mux.create("/f")
        payload = b"".join(bytes([i]) * BS for i in range(8))
        mux.write(handle, 0, payload)
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 2, 3, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        inode = mux.ns.get(handle.ino)
        assert len(inode.blt.tiers_used()) == 2
        assert mux.read(handle, 0, len(payload)) == payload
        # a read spanning the tier boundary exactly
        assert mux.read(handle, BS + 100, 3 * BS) == payload[BS + 100 : 4 * BS + 100]
        mux.close(handle)

    def test_partial_block_write_stays_on_current_tier(self, stack):
        """Sub-block writes must not split one block across file systems."""
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(4 * BS))
        hdd_id = stack.tier_id("hdd")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 4, stack.tier_id("pm"), hdd_id)
        )
        inode = mux.ns.get(handle.ino)
        assert inode.blt.lookup(1) == hdd_id
        # partial overwrite inside block 1: policy would say pm, but the
        # block lives on hdd and must be updated there
        mux.write(handle, BS + 10, b"PATCH")
        assert inode.blt.lookup(1) == hdd_id
        assert mux.read(handle, BS + 10, 5) == b"PATCH"
        mux.close(handle)

    def test_full_block_overwrite_can_move_tiers(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(BS))
        pm_id = stack.tier_id("pm")
        hdd_id = stack.tier_id("hdd")
        mux.engine.migrate_now(MigrationOrder(handle.ino, 0, 1, pm_id, hdd_id))
        inode = mux.ns.get(handle.ino)
        assert inode.blt.lookup(0) == hdd_id
        # full-block overwrite goes wherever the policy says (pm)
        mux.write(handle, 0, b"N" * BS)
        assert inode.blt.lookup(0) == pm_id
        assert mux.read(handle, 0, 4) == b"NNNN"
        mux.close(handle)

    def test_split_write_counter(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(4 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 1, 1, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        before = mux.stats.get("split_writes")
        # straddles pm block 0 (partial), ssd block 1 (partial) -> split
        mux.write(handle, BS - 100, bytes(200))
        assert mux.stats.get("split_writes") > before
        mux.close(handle)


class TestPlacementFallback:
    def test_write_spills_when_tier_full(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        pm_free = stack.filesystems["pm"].statfs().free_bytes
        handle = mux.create("/big")
        # write more than PM can hold; the LRU policy must spill downhill
        total = pm_free + 4 * 1024 * 1024
        chunk = bytes(256 * 1024)
        written = 0
        while written < total:
            mux.write(handle, written, chunk)
            written += len(chunk)
        inode = mux.ns.get(handle.ino)
        assert len(inode.blt.tiers_used()) >= 2
        # all data still readable
        assert mux.read(handle, 0, 16) == bytes(16)
        assert mux.getattr("/big").size == written
        mux.close(handle)


class TestFsyncFanout:
    def test_fsync_reaches_all_participating_tiers(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(8 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 4, 4, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        mux.write(handle, 4 * BS + 1, b"dirty-on-ssd")
        ssd_fsyncs = stack.filesystems["ssd"].stats.get("fsync")
        pm_writes = stack.devices["pm"].stats.write_ops
        mux.fsync(handle)
        assert stack.filesystems["ssd"].stats.get("fsync") > ssd_fsyncs
        mux.close(handle)
