"""Strata baseline: log-then-digest writes, static migration routing,
extent-tree locking, write amplification."""

import pytest

from repro.errors import MigrationUnsupported
from repro.strata.fs import DEVICE_INDICES, SUPPORTED_MIGRATIONS, decode, encode

BS = 4096


class TestEncoding:
    def test_roundtrip(self):
        value = encode(2, 12345)
        assert decode(value) == (2, 12345)

    def test_devices_distinct(self):
        assert decode(encode(0, 5))[0] != decode(encode(1, 5))[0]


class TestLogThenDigest:
    def test_writes_land_in_log(self, strata, pm):
        handle = strata.create("/f")
        writes_before = pm.stats.bytes_written
        strata.write(handle, 0, bytes(8 * BS))
        assert pm.stats.bytes_written >= writes_before + 8 * BS
        assert strata.log_utilization > 0
        strata.close(handle)

    def test_digest_empties_log(self, strata):
        strata.write_file("/f", bytes(16 * BS))
        assert strata.log_utilization > 0
        strata.digest()
        assert strata.log_utilization == 0

    def test_reads_served_from_log_before_digest(self, strata):
        handle = strata.create("/f")
        strata.write(handle, 0, b"in the log")
        assert strata.read(handle, 0, 10) == b"in the log"
        strata.close(handle)

    def test_reads_after_digest(self, strata):
        handle = strata.create("/f")
        strata.write(handle, 0, b"digested")
        strata.digest()
        assert strata.read(handle, 0, 8) == b"digested"
        strata.close(handle)

    def test_pm_write_amplification(self, strata, pm):
        """Log + digest writes PM-bound data twice (§3.1's criticism)."""
        strata.pin_target = "pm"
        handle = strata.create("/f")
        written = 16 * BS
        before = pm.stats.bytes_written
        strata.write(handle, 0, bytes(written))
        strata.digest()
        amplification = (pm.stats.bytes_written - before) / written
        assert amplification >= 1.9
        strata.close(handle)

    def test_digest_targets_pinned_device(self, strata, ssd):
        strata.pin_target = "ssd"
        strata.write_file("/f", bytes(8 * BS))
        before = ssd.stats.bytes_written
        strata.digest()
        assert ssd.stats.bytes_written >= before + 8 * BS

    def test_log_full_forces_digest(self, strata):
        # keep writing until the log area would overflow
        handle = strata.create("/f")
        log_capacity = strata._log_alloc.count * BS
        strata.write(handle, 0, bytes(min(log_capacity // 2, 4 * 1024 * 1024)))
        digests_before = strata.stats.get("digests")
        offset = 0
        while strata.stats.get("digests") == digests_before:
            strata.write(handle, offset, bytes(64 * BS))
            offset += 64 * BS
        assert strata.stats.get("digests") > digests_before
        strata.close(handle)

    def test_overwrite_in_log_frees_old_entry(self, strata):
        handle = strata.create("/f")
        strata.write(handle, 0, bytes(BS))
        used = strata._log_alloc.used_blocks
        for _ in range(5):
            strata.write(handle, 0, bytes(BS))
        assert strata._log_alloc.used_blocks == used
        strata.close(handle)


class TestStaticRouting:
    def test_supported_pairs_exactly_figure_3a(self, strata):
        expected = {("pm", "ssd"), ("pm", "hdd")}
        names = ["pm", "ssd", "hdd"]
        supported = {
            (s, d)
            for s in names
            for d in names
            if s != d and strata.supports_migration(s, d)
        }
        assert supported == expected
        assert len(SUPPORTED_MIGRATIONS) == 2

    @pytest.mark.parametrize(
        "src,dst", [("ssd", "pm"), ("ssd", "hdd"), ("hdd", "pm"), ("hdd", "ssd")]
    )
    def test_unwired_pairs_raise_ns(self, strata, src, dst):
        strata.write_file("/f", bytes(4 * BS))
        strata.digest()
        with pytest.raises(MigrationUnsupported):
            strata.migrate_blocks("/f", 0, 4, src, dst)

    def test_pm_to_ssd_migration_moves_data(self, strata, ssd):
        strata.pin_target = "pm"
        strata.write_file("/f", bytes(16 * BS))
        strata.digest()
        before = ssd.stats.bytes_written
        moved = strata.migrate_blocks("/f", 0, 16, "pm", "ssd")
        assert moved == 16
        assert ssd.stats.bytes_written >= before + 16 * BS
        assert strata.read_file("/f") == bytes(16 * BS)

    def test_migration_skips_log_resident_blocks(self, strata):
        strata.pin_target = "pm"
        strata.write_file("/f", bytes(4 * BS))  # still in the log
        moved = strata.migrate_blocks("/f", 0, 4, "pm", "ssd")
        assert moved == 0

    def test_pair_stats_track_throughput(self, strata):
        strata.pin_target = "pm"
        strata.write_file("/f", bytes(32 * BS))
        strata.digest()
        strata.migrate_blocks("/f", 0, 32, "pm", "ssd")
        matrix = strata.throughput_matrix()
        assert ("pm", "ssd") in matrix
        assert matrix[("pm", "ssd")] > 0


class TestExtentTreeLocking:
    def test_ops_during_digest_pay_lock_cost(self, strata, clock):
        handle = strata.create("/f")
        strata.write(handle, 0, bytes(BS))
        t0 = clock.now_ns
        strata.read(handle, 0, 1)
        free_cost = clock.now_ns - t0
        strata._tree_busy = True
        t0 = clock.now_ns
        strata.read(handle, 0, 1)
        locked_cost = clock.now_ns - t0
        strata._tree_busy = False
        assert locked_cost > free_cost
        strata.close(handle)


class TestStrataPosix:
    """Strata still behaves like a POSIX FS through the same interface."""

    def test_sparse(self, strata):
        handle = strata.create("/f")
        strata.write(handle, 10 * BS, b"tail")
        assert strata.read(handle, 0, 4) == bytes(4)
        assert strata.read(handle, 10 * BS, 4) == b"tail"
        strata.close(handle)

    def test_truncate(self, strata):
        handle = strata.create("/f")
        strata.write(handle, 0, b"0123456789")
        strata.truncate(handle, 4)
        assert strata.read(handle, 0, 10) == b"0123"
        strata.close(handle)

    def test_namespace(self, strata):
        strata.mkdir("/d")
        strata.write_file("/d/f", b"x")
        strata.rename("/d/f", "/d/g")
        assert strata.readdir("/d") == ["g"]
        strata.unlink("/d/g")
        strata.rmdir("/d")

    def test_digest_after_unlink_drops_stale_entries(self, strata):
        strata.write_file("/f", bytes(8 * BS))
        strata.unlink("/f")
        strata.digest()  # must not crash on stale log entries
        assert strata.log_utilization == 0

    def test_statfs_aggregates_devices(self, strata, pm, ssd, hdd):
        total = strata.statfs().total_blocks
        assert total > ssd.num_blocks  # more than any single device

    def test_crash_loses_nothing(self, strata):
        strata.write_file("/f", b"logged and flushed")
        strata.crash()
        strata.recover()
        assert strata.read_file("/f") == b"logged and flushed"

    def test_crash_after_digest(self, strata):
        strata.write_file("/f", bytes(16 * 4096))
        strata.digest()
        strata.crash()
        strata.recover()
        assert strata.read_file("/f") == bytes(16 * 4096)
        assert not strata._tree_busy
