"""Multiple in-flight migrations: different files, different ranges of the
same file, and opposing directions — all interleaved by the task runner."""

import pytest

from repro.core.policy import MigrationOrder
from repro.tools.fsck import check_mux

BS = 4096


@pytest.fixture
def env(stack_nocache):
    stack = stack_nocache
    mux = stack.mux
    return stack, mux


class TestParallelMigrations:
    def test_two_files_concurrently(self, env):
        stack, mux = env
        handles = []
        for i in range(2):
            handle = mux.create(f"/f{i}")
            mux.write(handle, 0, bytes([i + 1]) * (256 * BS))
            handles.append(handle)
        mux.engine.submit(
            MigrationOrder(handles[0].ino, 0, 256, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        mux.engine.submit(
            MigrationOrder(handles[1].ino, 0, 256, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        mux.engine.drain()
        assert mux.ns.get(handles[0].ino).blt.tiers_used() == [stack.tier_id("ssd")]
        assert mux.ns.get(handles[1].ino).blt.tiers_used() == [stack.tier_id("hdd")]
        for i, handle in enumerate(handles):
            assert mux.read(handle, 0, 4) == bytes([i + 1]) * 4
            mux.close(handle)
        assert check_mux(mux) == []

    def test_disjoint_ranges_same_file(self, env):
        stack, mux = env
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(512 * BS))
        mux.engine.submit(
            MigrationOrder(handle.ino, 0, 256, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        mux.engine.submit(
            MigrationOrder(handle.ino, 256, 256, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        mux.engine.drain()
        inode = mux.ns.get(handle.ino)
        assert inode.blt.blocks_on(stack.tier_id("ssd")) == 256
        assert inode.blt.blocks_on(stack.tier_id("hdd")) == 256
        assert inode.blt.blocks_on(stack.tier_id("pm")) == 0
        assert mux.read(handle, 0, 512 * BS) == bytes(512 * BS)
        assert check_mux(mux) == []
        mux.close(handle)

    def test_overlapping_migrations_same_file_converge(self, env):
        """Two movements over the same range: versions race, OCC retries,
        every block ends on exactly one tier and no data is lost."""
        stack, mux = env
        handle = mux.create("/f")
        payload = bytes(range(256)) * (4 * BS // 256) * 64  # 256 KiB
        mux.write(handle, 0, payload)
        blocks = len(payload) // BS
        t1 = mux.engine.submit(
            MigrationOrder(handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        t2 = mux.engine.submit(
            MigrationOrder(handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        mux.engine.drain()
        inode = mux.ns.get(handle.ino)
        total = sum(inode.blt.blocks_on(t) for t in mux.tier_ids())
        assert total == blocks
        assert inode.blt.blocks_on(stack.tier_id("pm")) == 0
        assert mux.read(handle, 0, len(payload)) == payload
        assert not inode.migration_active
        assert check_mux(mux) == []
        mux.close(handle)

    def test_chained_migration_after_drain(self, env):
        """pm -> ssd -> hdd, back-to-back, with reads in between."""
        stack, mux = env
        handle = mux.create("/f")
        mux.write(handle, 0, b"Z" * (64 * BS))
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 64, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        assert mux.read(handle, 0, 1) == b"Z"
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 64, stack.tier_id("ssd"), stack.tier_id("hdd"))
        )
        assert mux.read(handle, 63 * BS, 1) == b"Z"
        inode = mux.ns.get(handle.ino)
        assert inode.blt.tiers_used() == [stack.tier_id("hdd")]
        mux.close(handle)

    def test_writes_racing_two_migrations(self, env):
        from repro.sim.rng import DeterministicRng

        stack, mux = env
        rng = DeterministicRng(77)
        handle = mux.create("/f")
        blocks = 512
        mux.write(handle, 0, bytes(blocks * BS))
        model = bytearray(blocks * BS)
        mux.engine.submit(
            MigrationOrder(handle.ino, 0, blocks // 2, stack.tier_id("pm"), stack.tier_id("ssd"))
        )
        mux.engine.submit(
            MigrationOrder(handle.ino, blocks // 2, blocks // 2, stack.tier_id("pm"), stack.tier_id("hdd"))
        )
        writes = 0
        while mux.engine.tick():
            offset = rng.randint(0, blocks * BS - 100)
            data = bytes([writes % 251]) * 100
            mux.write(handle, offset, data)
            model[offset : offset + 100] = data
            writes += 1
        assert writes > 0
        assert mux.read(handle, 0, blocks * BS) == bytes(model)
        assert check_mux(mux) == []
        mux.close(handle)
