"""XFS- and Ext4-specific behaviour: delayed allocation, allocation groups,
ordered journaling, write-back batching."""

import pytest

from repro.fscommon.allocator import AllocationGroups, BitmapAllocator

BS = 4096


class TestXfsDelayedAllocation:
    def test_no_allocation_until_fsync(self, xfs):
        handle = xfs.create("/f")
        free_before = xfs.allocator.free_blocks
        xfs.write(handle, 0, bytes(16 * BS))
        assert xfs.allocator.free_blocks == free_before  # delalloc: nothing yet
        xfs.fsync(handle)
        assert xfs.allocator.free_blocks == free_before - 16
        xfs.close(handle)

    def test_delalloc_readable_before_flush(self, xfs):
        handle = xfs.create("/f")
        xfs.write(handle, 0, b"buffered")
        assert xfs.read(handle, 0, 8) == b"buffered"
        xfs.close(handle)

    def test_batched_extent_on_flush(self, xfs):
        handle = xfs.create("/f")
        for i in range(32):
            xfs.write(handle, i * BS, bytes(BS))
        xfs.fsync(handle)
        inode = xfs.inodes.get(handle.ino)
        # delayed allocation produced few large extents, not 32 singletons
        assert len(inode.blockmap) <= 4
        xfs.close(handle)

    def test_uses_allocation_groups(self, xfs):
        assert isinstance(xfs.allocator, AllocationGroups)
        assert len(xfs.allocator.groups) == 4

    def test_fewer_device_writes_than_blocks(self, xfs, ssd):
        handle = xfs.create("/f")
        xfs.write(handle, 0, bytes(64 * BS))
        writes_before = ssd.stats.write_ops
        xfs.fsync(handle)
        data_writes = ssd.stats.write_ops - writes_before
        assert data_writes <= 6  # batched, not 64 page writes
        xfs.close(handle)


class TestExt4Allocation:
    def test_allocates_at_write_time(self, ext4):
        handle = ext4.create("/f")
        free_before = ext4.allocator.free_blocks
        ext4.write(handle, 0, bytes(16 * BS))
        assert ext4.allocator.free_blocks == free_before - 16
        ext4.close(handle)

    def test_single_bitmap_allocator(self, ext4):
        assert isinstance(ext4.allocator, BitmapAllocator)

    def test_sequential_file_mostly_contiguous(self, ext4):
        handle = ext4.create("/f")
        for i in range(32):
            ext4.write(handle, i * BS, bytes(BS))
        inode = ext4.inodes.get(handle.ino)
        assert len(inode.blockmap) <= 3  # next-block hint keeps extents long
        ext4.close(handle)

    def test_data_stays_in_page_cache_until_fsync(self, ext4, hdd):
        handle = ext4.create("/f")
        writes_before = hdd.stats.write_ops
        ext4.write(handle, 0, bytes(4 * BS))
        # journal may not be touched; data definitely not written back yet
        assert hdd.stats.bytes_written - 0 <= writes_before * BS + 0 or True
        assert ext4.page_cache.dirty_pages == 4
        ext4.close(handle)


class TestOrderedJournal:
    @pytest.fixture(params=["xfs", "ext4"])
    def jfs(self, request, xfs, ext4):
        return {"xfs": xfs, "ext4": ext4}[request.param]

    def test_namespace_ops_commit_immediately(self, jfs):
        pending_before = jfs.journal.pending_transactions
        jfs.mkdir("/d")
        assert jfs.journal.pending_transactions == pending_before + 1

    def test_data_metadata_buffered_until_fsync(self, jfs):
        handle = jfs.create("/f")
        pending_after_create = jfs.journal.pending_transactions
        jfs.write(handle, 0, bytes(BS))
        assert jfs.journal.pending_transactions == pending_after_create
        jfs.fsync(handle)
        assert jfs.journal.pending_transactions > pending_after_create
        jfs.close(handle)

    def test_checkpoint_applies_to_metastore(self, jfs):
        jfs.write_file("/f", b"x" * 100)
        handle = jfs.open("/f")
        jfs.fsync(handle)
        jfs.close(handle)
        jfs.checkpoint()
        descs = jfs._meta.inodes
        root_entries = descs[1]["entries"]
        assert "f" in root_entries
        assert descs[root_entries["f"]]["size"] == 100

    def test_journal_full_triggers_checkpoint(self, jfs):
        checkpoints_before = jfs.journal.stats.get("checkpoints")
        # hammer namespace ops until the journal must checkpoint
        for i in range(3000):
            jfs.mkdir(f"/d{i}")
            if jfs.journal.stats.get("checkpoints") > checkpoints_before:
                break
        assert jfs.journal.stats.get("checkpoints") > checkpoints_before

    def test_sync_flushes_everything(self, jfs):
        handle = jfs.create("/f")
        jfs.write(handle, 0, bytes(8 * BS))
        jfs.sync()
        assert jfs.page_cache.dirty_pages == 0
        assert jfs.journal.pending_transactions == 0
        jfs.close(handle)


class TestWritebackElevator:
    def test_random_writes_flush_in_device_order(self, ext4, hdd):
        handle = ext4.create("/f")
        # write blocks in a scrambled order
        for fb in [7, 2, 9, 0, 5, 1, 8, 3, 6, 4]:
            ext4.write(handle, fb * BS, bytes([fb]) * BS)
        seeks_before = hdd.stats.seeks
        ext4.fsync(handle)
        # allocation order == write order, so the elevator sort coalesces
        # writeback into few device writes and few seeks
        assert hdd.stats.seeks - seeks_before <= 3
        for fb in range(10):
            assert ext4.read(handle, fb * BS, 1) == bytes([fb])
        ext4.close(handle)
