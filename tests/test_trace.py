"""Trace recording and replay."""

import pytest

from repro.bench.macro import varmail
from repro.bench.trace import Trace, TraceRecorder, replay
from repro.stack import build_stack
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024


@pytest.fixture
def recorded(stack_nocache):
    """A small recorded session plus the stack it ran on."""
    recorder = TraceRecorder(stack_nocache.mux)
    recorder.mkdir("/app")
    handle = recorder.create("/app/data")
    recorder.write(handle, 0, b"x" * 10_000)
    recorder.read(handle, 100, 500)
    recorder.fsync(handle)
    recorder.truncate(handle, 5_000)
    recorder.close(handle)
    recorder.rename("/app/data", "/app/data2")
    recorder.getattr("/app/data2")
    recorder.unlink("/app/data2")
    recorder.rmdir("/app")
    return recorder.trace, stack_nocache


class TestRecorder:
    def test_transparent(self, stack_nocache):
        recorder = TraceRecorder(stack_nocache.mux)
        handle = recorder.create("/f")
        recorder.write(handle, 0, b"through the proxy")
        assert recorder.read(handle, 0, 17) == b"through the proxy"
        recorder.close(handle)
        assert stack_nocache.mux.read_file("/f") == b"through the proxy"

    def test_records_every_op(self, recorded):
        trace, _ = recorded
        mix = trace.op_mix()
        for op in ("mkdir", "create", "write", "read", "fsync", "truncate",
                   "close", "rename_from", "rename_to", "getattr", "unlink",
                   "rmdir"):
            assert mix.get(op, 0) >= 1, op

    def test_byte_accounting(self, recorded):
        trace, _ = recorded
        assert trace.bytes_written == 10_000
        assert trace.bytes_read == 500

    def test_len(self, recorded):
        trace, _ = recorded
        assert len(trace) == len(trace.entries)


class TestReplay:
    def test_replays_on_fresh_stack(self, recorded):
        trace, _ = recorded
        fresh = build_stack(
            capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB},
            enable_cache=False,
        )
        result = replay(trace, fresh.mux, fresh.clock)
        assert result.operations == len(trace)
        assert result.elapsed_s > 0
        # the final namespace state matches the recorded session's end state
        assert not fresh.mux.exists("/app")

    def test_replay_on_native_fs(self, recorded, ext4, clock):
        trace, _ = recorded
        result = replay(trace, ext4, clock)
        assert result.operations == len(trace)

    def test_replay_deterministic(self, recorded):
        trace, _ = recorded

        def run():
            fresh = build_stack(
                capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB},
                enable_cache=False,
            )
            return replay(trace, fresh.mux, fresh.clock).elapsed_s

        assert run() == run()

    def test_macro_workload_roundtrip(self):
        """Record a macro workload, replay it elsewhere, compare costs."""
        source = build_stack(
            capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB}
        )
        recorder = TraceRecorder(source.mux)
        varmail(recorder, source.clock, operations=60)
        trace = recorder.trace
        assert len(trace) > 60

        target = build_stack(
            capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB}
        )
        result = replay(trace, target.mux, target.clock)
        assert result.operations == len(trace)

    def test_trace_drives_autotuner(self):
        """A trace replaces the synthetic workload in the auto-tuner."""
        from repro.core.autotune import AutoTuner, Configuration

        source = build_stack(
            capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB}
        )
        recorder = TraceRecorder(source.mux)
        varmail(recorder, source.clock, operations=40)
        trace = recorder.trace

        def traced_workload(fs, clock):
            return replay(trace, fs, clock)

        tuner = AutoTuner(
            traced_workload,
            candidates=[
                Configuration("lru", policy="lru"),
                Configuration("tpfs", policy="tpfs"),
            ],
            capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB},
        )
        evaluations = tuner.run()
        assert len(evaluations) == 2
        assert all(e.ops_per_sec > 0 for e in evaluations)
