"""Unit tests for the durable metadata store."""

import pytest

from repro.errors import FsError
from repro.fscommon.metastore import ROOT_INO, MetaStore


@pytest.fixture
def store():
    s = MetaStore()
    s.format(now=1.0)
    return s


class TestFormat:
    def test_root_exists(self, store):
        assert ROOT_INO in store.inodes
        assert store.inodes[ROOT_INO]["type"] == "dir"

    def test_next_ino(self, store):
        assert store.next_ino == ROOT_INO + 1


class TestRecords:
    def test_alloc_and_link(self, store):
        store.apply("alloc_inode", {"ino": 2, "file_type": "reg", "now": 2.0, "mode": 0o644})
        store.apply("link", {"parent": ROOT_INO, "name": "f", "ino": 2})
        assert store.inodes[ROOT_INO]["entries"] == {"f": 2}
        assert store.next_ino == 3

    def test_alloc_idempotent(self, store):
        rec = {"ino": 2, "file_type": "reg", "now": 2.0, "mode": 0o644}
        store.apply("alloc_inode", rec)
        store.apply("set_size", {"ino": 2, "size": 7})
        store.apply("alloc_inode", rec)  # replay must not reset size
        assert store.inodes[2]["size"] == 7

    def test_unlink(self, store):
        store.apply("alloc_inode", {"ino": 2, "file_type": "reg", "now": 0, "mode": 0})
        store.apply("link", {"parent": ROOT_INO, "name": "f", "ino": 2})
        store.apply("unlink", {"parent": ROOT_INO, "name": "f"})
        assert store.inodes[ROOT_INO]["entries"] == {}

    def test_unlink_missing_is_noop(self, store):
        store.apply("unlink", {"parent": ROOT_INO, "name": "ghost"})

    def test_free_inode(self, store):
        store.apply("alloc_inode", {"ino": 2, "file_type": "reg", "now": 0, "mode": 0})
        store.apply("free_inode", {"ino": 2})
        assert 2 not in store.inodes

    def test_set_attr(self, store):
        store.apply("set_attr", {"ino": ROOT_INO, "mtime": 9.0, "mode": 0o700})
        assert store.inodes[ROOT_INO]["mtime"] == 9.0
        assert store.inodes[ROOT_INO]["mode"] == 0o700

    def test_set_attr_bad_field(self, store):
        with pytest.raises(FsError):
            store.apply("set_attr", {"ino": ROOT_INO, "bogus": 1})

    def test_unknown_record_kind(self, store):
        with pytest.raises(FsError):
            store.apply("frobnicate", {})


class TestExtentRecords:
    def setup_file(self, store):
        store.apply("alloc_inode", {"ino": 5, "file_type": "reg", "now": 0, "mode": 0})

    def test_map_extent(self, store):
        self.setup_file(store)
        store.apply("map_extent", {"ino": 5, "start": 0, "count": 4, "dev": 100})
        assert store.inodes[5]["extents"] == [(0, 4, 100)]

    def test_map_overlap_replaces(self, store):
        self.setup_file(store)
        store.apply("map_extent", {"ino": 5, "start": 0, "count": 10, "dev": 100})
        store.apply("map_extent", {"ino": 5, "start": 3, "count": 2, "dev": 500})
        extents = store.inodes[5]["extents"]
        assert (0, 3, 100) in extents
        assert (3, 2, 500) in extents
        assert (5, 5, 105) in extents

    def test_unmap_extent_splits(self, store):
        self.setup_file(store)
        store.apply("map_extent", {"ino": 5, "start": 0, "count": 10, "dev": 100})
        store.apply("unmap_extent", {"ino": 5, "start": 4, "count": 2})
        extents = store.inodes[5]["extents"]
        assert (0, 4, 100) in extents
        assert (6, 4, 106) in extents

    def test_allocated_runs(self, store):
        self.setup_file(store)
        store.apply("map_extent", {"ino": 5, "start": 0, "count": 4, "dev": 100})
        store.apply("map_extent", {"ino": 5, "start": 10, "count": 2, "dev": 300})
        assert sorted(store.allocated_runs()) == [(100, 4), (300, 2)]


class TestClone:
    def test_clone_is_deep(self, store):
        store.apply("alloc_inode", {"ino": 2, "file_type": "reg", "now": 0, "mode": 0})
        dup = store.clone()
        dup.apply("set_size", {"ino": 2, "size": 50})
        assert store.inodes[2]["size"] == 0
        assert dup.inodes[2]["size"] == 50

    def test_clone_next_ino(self, store):
        store.apply("alloc_inode", {"ino": 7, "file_type": "reg", "now": 0, "mode": 0})
        assert store.clone().next_ino == 8
