"""NOVA-specific behaviour: DAX, copy-on-write, flush-based persistence."""

import pytest

from repro.devices.pm import PersistentMemoryDevice
from repro.fs.nova import NovaFileSystem
from repro.sim.clock import SimClock

BS = 4096


class TestConstruction:
    def test_requires_pm_device(self, ssd, clock):
        with pytest.raises(TypeError):
            NovaFileSystem("bad", ssd, clock)

    def test_reserves_log_space(self, nova, pm):
        assert nova._total_data_blocks() < pm.num_blocks


class TestCopyOnWrite:
    def test_overwrite_moves_block(self, nova):
        handle = nova.create("/f")
        nova.write(handle, 0, b"v1" + bytes(BS - 2))
        inode = nova.inodes.get(handle.ino)
        first_home = inode.blockmap.lookup(0)
        nova.write(handle, 0, b"v2" + bytes(BS - 2))
        second_home = inode.blockmap.lookup(0)
        assert first_home != second_home  # log-structured: never in place
        assert nova.read(handle, 0, 2) == b"v2"
        nova.close(handle)

    def test_old_block_freed(self, nova):
        handle = nova.create("/f")
        nova.write(handle, 0, bytes(BS))
        free_after_first = nova.allocator.free_blocks
        for _ in range(8):
            nova.write(handle, 0, bytes(BS))
        assert nova.allocator.free_blocks == free_after_first
        nova.close(handle)

    def test_cow_counted(self, nova):
        handle = nova.create("/f")
        nova.write(handle, 0, bytes(4 * BS))
        assert nova.stats.get("cow_blocks") == 4
        nova.close(handle)


class TestPersistence:
    def test_no_unflushed_lines_after_write(self, nova, pm):
        handle = nova.create("/f")
        nova.write(handle, 0, b"data" * 100)
        assert pm.unflushed_lines == 0  # everything flushed at write return
        nova.close(handle)

    def test_write_charges_flushes(self, nova, pm):
        handle = nova.create("/f")
        flushes_before = pm.stats.flush_ops
        nova.write(handle, 0, bytes(BS))
        assert pm.stats.flush_ops > flushes_before
        nova.close(handle)

    def test_crash_loses_nothing(self, nova):
        handle = nova.create("/f")
        nova.write(handle, 0, b"no fsync needed")
        nova.crash()
        nova.recover()
        assert nova.read_file("/f") == b"no fsync needed"

    def test_crash_preserves_namespace(self, nova):
        nova.mkdir("/d")
        nova.write_file("/d/f", b"x")
        nova.crash()
        nova.recover()
        assert nova.readdir("/d") == ["f"]

    def test_log_entries_counted(self, nova):
        nova.write_file("/f", b"x")
        assert nova.stats.get("log_entries") >= 2  # create + write


class TestDax:
    def test_read_loads_from_pm(self, nova, pm):
        nova.write_file("/f", b"z" * BS)
        reads_before = pm.stats.read_ops
        nova.read_file("/f")
        assert pm.stats.read_ops > reads_before

    def test_fsync_cheap(self, nova, clock):
        handle = nova.create("/f")
        nova.write(handle, 0, bytes(BS))
        t0 = clock.now_ns
        nova.fsync(handle)
        # a fence, not a writeback storm
        assert clock.now_ns - t0 < 10_000
        nova.close(handle)
