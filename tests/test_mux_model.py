"""Property test: Mux contents always match a flat reference model, no
matter how blocks are spread across tiers by writes and random migrations.

This is the §2 correctness contract end-to-end: block-granular routing,
sparse backing files, the BLT, the SCM cache and OCC migration all compose
to plain POSIX file semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.policy import MigrationOrder
from repro.stack import build_stack

MIB = 1024 * 1024
SPAN = 48 * 1024
BS = 4096

write_op = st.tuples(
    st.just("write"),
    st.integers(0, SPAN - 1),
    st.integers(1, 8000),
    st.integers(0, 255),
)
read_op = st.tuples(
    st.just("read"), st.integers(0, SPAN - 1), st.integers(1, 8000), st.just(0)
)
truncate_op = st.tuples(st.just("truncate"), st.integers(0, SPAN), st.just(0), st.just(0))
migrate_op = st.tuples(
    st.just("migrate"),
    st.integers(0, SPAN // BS),  # block start
    st.integers(1, 8),  # block count
    st.integers(0, 5),  # encodes the (src, dst) pair
)
fsync_op = st.tuples(st.just("fsync"), st.just(0), st.just(0), st.just(0))

ops_strategy = st.lists(
    st.one_of(write_op, read_op, truncate_op, migrate_op, fsync_op), max_size=25
)

PAIRS = [(0, 1), (0, 2), (1, 0), (1, 2), (2, 0), (2, 1)]


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy, cache=st.booleans())
def test_mux_matches_reference_model(ops, cache):
    stack = build_stack(
        capacities={"pm": 8 * MIB, "ssd": 16 * MIB, "hdd": 16 * MIB},
        enable_cache=cache,
    )
    mux = stack.mux
    tier_by_index = [
        stack.tier_id("pm"),
        stack.tier_id("ssd"),
        stack.tier_id("hdd"),
    ]
    model = bytearray()
    handle = mux.create("/f")
    for op, a, b, c in ops:
        if op == "write":
            data = bytes([c]) * b
            mux.write(handle, a, data)
            if len(model) < a + b:
                model.extend(bytes(a + b - len(model)))
            model[a : a + b] = data
        elif op == "read":
            assert mux.read(handle, a, b) == bytes(model[a : a + b])
        elif op == "truncate":
            mux.truncate(handle, a)
            if a <= len(model):
                del model[a:]
            else:
                model.extend(bytes(a - len(model)))
        elif op == "migrate":
            src_index, dst_index = PAIRS[c % len(PAIRS)]
            mux.engine.migrate_now(
                MigrationOrder(
                    handle.ino,
                    a,
                    b,
                    tier_by_index[src_index],
                    tier_by_index[dst_index],
                )
            )
        else:
            mux.fsync(handle)
    assert mux.getattr("/f").size == len(model)
    assert mux.read(handle, 0, len(model) + 16) == bytes(model)
    # BLT structural invariants hold after any sequence
    inode = mux.ns.get(handle.ino)
    inode.blt.check_invariants()
    if mux.cache is not None:
        mux.cache.check_invariants()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=ops_strategy)
def test_mux_blocks_owned_by_exactly_one_tier(ops):
    """Every mapped block has exactly one owning tier (§2.2)."""
    stack = build_stack(
        capacities={"pm": 8 * MIB, "ssd": 16 * MIB, "hdd": 16 * MIB},
        enable_cache=False,
    )
    mux = stack.mux
    tiers = [stack.tier_id(n) for n in ("pm", "ssd", "hdd")]
    handle = mux.create("/f")
    for op, a, b, c in ops:
        if op == "write":
            mux.write(handle, a, bytes([c]) * b)
        elif op == "migrate":
            src, dst = PAIRS[c % len(PAIRS)]
            mux.engine.migrate_now(
                MigrationOrder(handle.ino, a, b, tiers[src], tiers[dst])
            )
    inode = mux.ns.get(handle.ino)
    end = inode.blt.end_block()
    per_tier_sum = sum(inode.blt.blocks_on(t) for t in tiers)
    assert per_tier_sum == inode.blt.mapped_blocks()
    for fb in range(end):
        owner = inode.blt.lookup(fb)
        assert owner is None or owner in tiers
