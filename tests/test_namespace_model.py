"""Property test: namespace operations match a reference tree model.

Random sequences of create/mkdir/unlink/rmdir/rename run in lockstep
against a plain dict-of-dicts model; the file system (every native FS and
Mux) must agree on success/failure and on the resulting tree.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.devices.pm import PersistentMemoryDevice
from repro.errors import FsError
from repro.fs.nova import NovaFileSystem
from repro.sim.clock import SimClock
from repro.stack import build_stack

MIB = 1024 * 1024

NAMES = ["a", "b", "c", "d"]
# small path universe so operations collide interestingly
PATHS = (
    [f"/{n}" for n in NAMES]
    + [f"/{p}/{n}" for p in NAMES[:2] for n in NAMES]
)

op_strategy = st.tuples(
    st.sampled_from(["create", "mkdir", "unlink", "rmdir", "rename"]),
    st.sampled_from(PATHS),
    st.sampled_from(PATHS),
)


class TreeModel:
    """Reference namespace: nested dicts; leaves are the string 'file'."""

    def __init__(self) -> None:
        self.root: dict = {}

    def _walk_parent(self, path: str):
        parts = [p for p in path.split("/") if p]
        node = self.root
        for part in parts[:-1]:
            child = node.get(part)
            if not isinstance(child, dict):
                raise KeyError("bad parent")
            node = child
        return node, parts[-1]

    def lookup(self, path: str):
        parts = [p for p in path.split("/") if p]
        node = self.root
        for part in parts:
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node

    def create(self, path: str) -> None:
        parent, name = self._walk_parent(path)
        if name in parent:
            raise KeyError("exists")
        parent[name] = "file"

    def mkdir(self, path: str) -> None:
        parent, name = self._walk_parent(path)
        if name in parent:
            raise KeyError("exists")
        parent[name] = {}

    def unlink(self, path: str) -> None:
        parent, name = self._walk_parent(path)
        if parent.get(name) != "file":
            raise KeyError("not a file")
        del parent[name]

    def rmdir(self, path: str) -> None:
        parent, name = self._walk_parent(path)
        node = parent.get(name)
        if not isinstance(node, dict) or node:
            raise KeyError("not an empty dir")
        del parent[name]

    def rename(self, old: str, new: str) -> None:
        old_parent, old_name = self._walk_parent(old)
        if old_name not in old_parent:
            raise KeyError("missing source")
        if old == new:
            return  # successful no-op
        if new.startswith(old + "/"):
            raise KeyError("into itself")
        new_parent, new_name = self._walk_parent(new)
        moving = old_parent[old_name]
        existing = new_parent.get(new_name)
        if existing is not None:
            if isinstance(existing, dict):
                if not isinstance(moving, dict) or existing:
                    raise KeyError("bad overwrite")
            elif isinstance(moving, dict):
                raise KeyError("file over dir")
        del old_parent[old_name]
        new_parent[new_name] = moving

    def listing(self, node=None, prefix="/"):
        node = self.root if node is None else node
        out = {}
        for name, child in node.items():
            path = prefix.rstrip("/") + "/" + name
            if isinstance(child, dict):
                out[path] = sorted(child)
                out.update(self.listing(child, path))
            else:
                out[path] = "file"
        return out


def run_ops(fs, ops):
    model = TreeModel()
    for op, path1, path2 in ops:
        try:
            if op == "create":
                model.create(path1)
            elif op == "mkdir":
                model.mkdir(path1)
            elif op == "unlink":
                model.unlink(path1)
            elif op == "rmdir":
                model.rmdir(path1)
            else:
                model.rename(path1, path2)
            model_ok = True
        except KeyError:
            model_ok = False
        try:
            if op == "create":
                fs.close(fs.create(path1))
            elif op == "mkdir":
                fs.mkdir(path1)
            elif op == "unlink":
                fs.unlink(path1)
            elif op == "rmdir":
                fs.rmdir(path1)
            else:
                fs.rename(path1, path2)
            fs_ok = True
        except FsError:
            fs_ok = False
        assert fs_ok == model_ok, (op, path1, path2)
    # final trees agree
    for path, expect in model.listing().items():
        if expect == "file":
            assert not fs.getattr(path).is_dir, path
        else:
            assert fs.readdir(path) == expect, path


@settings(max_examples=80, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, max_size=30))
def test_native_fs_namespace_matches_model(ops):
    clock = SimClock()
    fs = NovaFileSystem("nova", PersistentMemoryDevice("pm", 16 * MIB, clock), clock)
    run_ops(fs, ops)


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=st.lists(op_strategy, max_size=25))
def test_mux_namespace_matches_model(ops):
    stack = build_stack(
        capacities={"pm": 8 * MIB, "ssd": 16 * MIB, "hdd": 16 * MIB},
        enable_cache=False,
    )
    run_ops(stack.mux, ops)
