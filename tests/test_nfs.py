"""Networked file system adapter + attaching it as a Mux tier (§4)."""

import pytest

from repro.core.policy import MigrationOrder
from repro.devices.ssd import SolidStateDrive
from repro.fs.nfs import NetworkFileSystem, network_profile
from repro.fs.xfs import XfsFileSystem
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024
BS = 4096


@pytest.fixture
def remote_env(clock):
    backing_dev = SolidStateDrive("remote-ssd", 64 * MIB, clock)
    backing = XfsFileSystem("remote-xfs", backing_dev, clock)
    nfs = NetworkFileSystem("nfs", backing, clock, rtt_us=200.0)
    return nfs, backing, clock


class TestNetworkFileSystem:
    def test_roundtrip(self, remote_env):
        nfs, _, _ = remote_env
        handle = nfs.create("/f")
        nfs.write(handle, 0, b"over the wire")
        assert nfs.read(handle, 0, 13) == b"over the wire"
        nfs.close(handle)

    def test_every_op_pays_rtt(self, remote_env):
        nfs, _, clock = remote_env
        t0 = clock.now_ns
        nfs.mkdir("/d")
        assert clock.now_ns - t0 >= nfs.rtt_ns

    def test_transfer_charged_by_size(self, remote_env):
        nfs, _, clock = remote_env
        handle = nfs.create("/f")
        t0 = clock.now_ns
        nfs.write(handle, 0, bytes(64 * 1024))
        big = clock.now_ns - t0
        t0 = clock.now_ns
        nfs.write(handle, 0, bytes(1024))
        small = clock.now_ns - t0
        assert big > small
        nfs.close(handle)

    def test_rpc_accounting(self, remote_env):
        nfs, _, _ = remote_env
        handle = nfs.create("/f")
        nfs.write(handle, 0, b"x" * 1000)
        nfs.fsync(handle)
        nfs.close(handle)
        assert nfs.stats.get("rpcs") == 4
        assert nfs.stats.get("bytes_on_wire") >= 1000

    def test_namespace_forwarded(self, remote_env):
        nfs, backing, _ = remote_env
        nfs.mkdir("/d")
        nfs.write_file("/d/f", b"1")
        assert backing.readdir("/d") == ["f"]
        nfs.rename("/d/f", "/d/g")
        assert nfs.readdir("/d") == ["g"]
        nfs.unlink("/d/g")
        nfs.rmdir("/d")

    def test_sparse_and_punch(self, remote_env):
        nfs, _, _ = remote_env
        handle = nfs.create("/f")
        nfs.write(handle, 4 * BS, b"tail")
        assert nfs.read(handle, 0, 4) == bytes(4)
        nfs.write(handle, 0, bytes(4 * BS))
        nfs.punch_hole(handle, 0, BS)
        assert nfs.read(handle, 0, 4) == bytes(4)
        nfs.close(handle)

    def test_crash_recovery_delegates(self, remote_env):
        nfs, _, _ = remote_env
        handle = nfs.create("/f")
        nfs.write(handle, 0, b"durable")
        nfs.fsync(handle)
        nfs.crash()
        nfs.recover()
        assert nfs.read_file("/f") == b"durable"

    def test_network_profile(self):
        profile = network_profile(rtt_us=500, bandwidth=1e9)
        assert profile.read_latency_ns == 500_000
        assert profile.read_bandwidth == 1e9


class TestRemoteTierUnderMux:
    """§4: a networked file system attached as just another Mux tier."""

    @pytest.fixture
    def stack_with_remote(self):
        from repro.stack import build_stack

        stack = build_stack(tiers=["pm", "ssd"], enable_cache=False)
        remote_dev = SolidStateDrive("r-ssd", 128 * MIB, stack.clock)
        remote_backing = XfsFileSystem("r-xfs", remote_dev, stack.clock)
        nfs = NetworkFileSystem("nfs", remote_backing, stack.clock, rtt_us=150.0)
        stack.vfs.mount("/tiers/remote", nfs)
        tier = stack.mux.add_tier(
            "remote", nfs, "/tiers/remote", network_profile(150.0, 1.25e9)
        )
        stack.tier_ids["remote"] = tier.tier_id
        return stack, nfs

    def test_remote_tier_registered(self, stack_with_remote):
        stack, _ = stack_with_remote
        assert "remote" in [t.name for t in stack.mux.registry.ordered()]
        # the network tier ranks slowest, so the LRU policy treats it as
        # the capacity tier
        assert stack.mux.registry.ordered()[-1].name == "remote"

    def test_migrate_to_remote_and_back(self, stack_with_remote):
        stack, nfs = stack_with_remote
        mux = stack.mux
        handle = mux.create("/archive.bin")
        payload = bytes(range(256)) * 64  # 16 KiB
        mux.write(handle, 0, payload)
        remote_id = stack.tier_id("remote")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 4, stack.tier_id("pm"), remote_id)
        )
        inode = mux.ns.get(handle.ino)
        assert inode.blt.blocks_on(remote_id) == 4
        assert nfs.stats.get("rpcs") > 0
        assert mux.read(handle, 0, len(payload)) == payload
        # promote back to local PM
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 4, remote_id, stack.tier_id("pm"))
        )
        assert inode.blt.blocks_on(remote_id) == 0
        assert mux.read(handle, 0, len(payload)) == payload
        mux.close(handle)

    def test_remote_reads_slower_than_local(self, stack_with_remote):
        stack, _ = stack_with_remote
        mux = stack.mux
        clock = stack.clock
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(2 * BS))
        mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 1, 1, stack.tier_id("pm"), stack.tier_id("remote")
            )
        )
        t0 = clock.now_ns
        mux.read(handle, 0, 16)  # local pm block
        local = clock.now_ns - t0
        t0 = clock.now_ns
        mux.read(handle, BS, 16)  # remote block
        remote = clock.now_ns - t0
        assert remote > local + 100_000  # at least the RTT apart
        mux.close(handle)

    def test_occ_works_across_the_network(self, stack_with_remote):
        from repro.sim.tasks import run_interleaved

        stack, _ = stack_with_remote
        mux = stack.mux
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(128 * BS))
        task = mux.engine.submit(
            MigrationOrder(
                handle.ino, 0, 128, stack.tier_id("pm"), stack.tier_id("remote")
            )
        )

        def racer(step):
            if step == 0:
                mux.write(handle, 0, b"racing the network")

        result = run_interleaved(task, racer)
        assert mux.read(handle, 0, 18) == b"racing the network"
        inode = mux.ns.get(handle.ino)
        assert inode.blt.blocks_on(stack.tier_id("remote")) == 128
        mux.close(handle)
