"""Namespace semantics shared by every native file system.

The ``any_fs`` fixture runs each test against NOVA, XFS and Ext4.
"""

import pytest

from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.vfs.interface import OpenFlags
from repro.vfs.stat import FileType


class TestCreateOpen:
    def test_create(self, any_fs):
        any_fs.create("/f")
        st = any_fs.getattr("/f")
        assert st.file_type is FileType.REGULAR
        assert st.size == 0

    def test_create_duplicate(self, any_fs):
        any_fs.create("/f")
        with pytest.raises(FileExists):
            any_fs.create("/f")

    def test_create_missing_parent(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.create("/no/such/f")

    def test_open_missing(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.open("/ghost", OpenFlags.RDONLY)

    def test_open_creat(self, any_fs):
        handle = any_fs.open("/new", OpenFlags.RDWR | OpenFlags.CREAT)
        assert any_fs.exists("/new")
        any_fs.close(handle)

    def test_open_trunc(self, any_fs):
        any_fs.write_file("/f", b"content")
        handle = any_fs.open("/f", OpenFlags.RDWR | OpenFlags.TRUNC)
        assert any_fs.getattr("/f").size == 0
        any_fs.close(handle)

    def test_open_directory_rejected(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            any_fs.open("/d", OpenFlags.RDONLY)

    def test_closed_handle_rejected(self, any_fs):
        handle = any_fs.create("/f")
        any_fs.close(handle)
        from repro.errors import BadFileHandle

        with pytest.raises(BadFileHandle):
            any_fs.read(handle, 0, 1)


class TestUnlink:
    def test_unlink(self, any_fs):
        any_fs.write_file("/f", b"x")
        any_fs.unlink("/f")
        assert not any_fs.exists("/f")

    def test_unlink_missing(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.unlink("/ghost")

    def test_unlink_directory_rejected(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(IsADirectory):
            any_fs.unlink("/d")

    def test_unlink_frees_space(self, any_fs):
        free_before = any_fs.statfs().free_blocks
        any_fs.write_file("/f", bytes(1024 * 1024))
        handle = any_fs.open("/f")
        any_fs.fsync(handle)
        any_fs.close(handle)
        assert any_fs.statfs().free_blocks < free_before
        any_fs.unlink("/f")
        assert any_fs.statfs().free_blocks == free_before


class TestDirectories:
    def test_mkdir_readdir(self, any_fs):
        any_fs.mkdir("/d")
        any_fs.write_file("/d/a", b"")
        any_fs.write_file("/d/b", b"")
        assert any_fs.readdir("/d") == ["a", "b"]

    def test_mkdir_duplicate(self, any_fs):
        any_fs.mkdir("/d")
        with pytest.raises(FileExists):
            any_fs.mkdir("/d")

    def test_nested_dirs(self, any_fs):
        any_fs.mkdir("/a")
        any_fs.mkdir("/a/b")
        any_fs.write_file("/a/b/f", b"deep")
        assert any_fs.read_file("/a/b/f") == b"deep"

    def test_rmdir_empty(self, any_fs):
        any_fs.mkdir("/d")
        any_fs.rmdir("/d")
        assert not any_fs.exists("/d")

    def test_rmdir_nonempty(self, any_fs):
        any_fs.mkdir("/d")
        any_fs.write_file("/d/f", b"")
        with pytest.raises(DirectoryNotEmpty):
            any_fs.rmdir("/d")

    def test_rmdir_on_file(self, any_fs):
        any_fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            any_fs.rmdir("/f")

    def test_readdir_on_file(self, any_fs):
        any_fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            any_fs.readdir("/f")

    def test_file_through_file_component(self, any_fs):
        any_fs.write_file("/f", b"")
        with pytest.raises((NotADirectory, FileNotFound)):
            any_fs.getattr("/f/sub")


class TestRename:
    def test_rename_file(self, any_fs):
        any_fs.write_file("/a", b"data")
        any_fs.rename("/a", "/b")
        assert not any_fs.exists("/a")
        assert any_fs.read_file("/b") == b"data"

    def test_rename_into_dir(self, any_fs):
        any_fs.mkdir("/d")
        any_fs.write_file("/a", b"1")
        any_fs.rename("/a", "/d/a")
        assert any_fs.read_file("/d/a") == b"1"

    def test_rename_overwrites_file(self, any_fs):
        any_fs.write_file("/a", b"new")
        any_fs.write_file("/b", b"old")
        any_fs.rename("/a", "/b")
        assert any_fs.read_file("/b") == b"new"

    def test_rename_missing_source(self, any_fs):
        with pytest.raises(FileNotFound):
            any_fs.rename("/ghost", "/b")

    def test_rename_dir(self, any_fs):
        any_fs.mkdir("/d1")
        any_fs.write_file("/d1/f", b"x")
        any_fs.rename("/d1", "/d2")
        assert any_fs.read_file("/d2/f") == b"x"

    def test_rename_dir_over_nonempty_dir(self, any_fs):
        any_fs.mkdir("/d1")
        any_fs.mkdir("/d2")
        any_fs.write_file("/d2/f", b"x")
        with pytest.raises(DirectoryNotEmpty):
            any_fs.rename("/d1", "/d2")


class TestAttributes:
    def test_setattr_times(self, any_fs):
        any_fs.write_file("/f", b"")
        st = any_fs.setattr("/f", atime=100.0, mtime=200.0)
        assert st.atime == 100.0
        assert st.mtime == 200.0

    def test_setattr_mode(self, any_fs):
        any_fs.write_file("/f", b"")
        st = any_fs.setattr("/f", mode=0o600)
        assert st.mode == 0o600

    def test_setattr_unknown_attr(self, any_fs):
        from repro.errors import InvalidArgument

        any_fs.write_file("/f", b"")
        with pytest.raises(InvalidArgument):
            any_fs.setattr("/f", size=10)

    def test_mtime_advances_on_write(self, any_fs, clock):
        handle = any_fs.create("/f")
        before = any_fs.getattr("/f").mtime
        clock.advance_ns(1_000_000)
        any_fs.write(handle, 0, b"x")
        assert any_fs.getattr("/f").mtime > before
        any_fs.close(handle)

    def test_atime_advances_on_read(self, any_fs, clock):
        any_fs.write_file("/f", b"x")
        handle = any_fs.open("/f", OpenFlags.RDONLY)
        before = any_fs.getattr("/f").atime
        clock.advance_ns(1_000_000)
        any_fs.read(handle, 0, 1)
        assert any_fs.getattr("/f").atime > before
        any_fs.close(handle)

    def test_statfs_sane(self, any_fs):
        stats = any_fs.statfs()
        assert stats.total_blocks > 0
        assert 0 <= stats.free_blocks <= stats.total_blocks
        assert stats.block_size == any_fs.block_size
