"""Unit tests for the write-ahead journal, including torn-write recovery."""

import pytest

from repro.devices.base import Device
from repro.devices.profile import OPTANE_SSD_P4800X
from repro.errors import FsError
from repro.fscommon.journal import Journal, JournalFull
from repro.sim.clock import SimClock

MIB = 1024 * 1024


@pytest.fixture
def device():
    return Device("j0", OPTANE_SSD_P4800X, 4 * MIB, SimClock())


@pytest.fixture
def journal(device):
    return Journal(device, start_block=0, num_blocks=64)


class TestCommit:
    def test_commit_makes_pending(self, journal):
        txn = journal.begin()
        txn.add("link", parent=1, name="f", ino=2)
        txn.commit()
        assert journal.pending_transactions == 1

    def test_empty_commit_writes_nothing(self, journal, device):
        txn = journal.begin()
        txn.commit()
        assert journal.pending_transactions == 0
        assert device.stats.write_ops == 0

    def test_double_commit_rejected(self, journal):
        txn = journal.begin()
        txn.add("x")
        txn.commit()
        with pytest.raises(FsError):
            txn.commit()

    def test_add_after_commit_rejected(self, journal):
        txn = journal.begin()
        txn.commit()
        with pytest.raises(FsError):
            txn.add("x")

    def test_commit_charges_device_write(self, journal, device):
        txn = journal.begin()
        txn.add("set_size", ino=1, size=10)
        txn.commit()
        assert device.stats.write_ops >= 1

    def test_journal_full(self, device):
        journal = Journal(device, 0, 2)
        txn = journal.begin()
        txn.add("big", payload="x" * 9000)  # needs > 2 blocks with framing
        with pytest.raises(JournalFull):
            txn.commit()


class TestCheckpoint:
    def test_checkpoint_applies_in_order(self, journal):
        applied = []
        for i in range(3):
            txn = journal.begin()
            txn.add("op", seq=i)
            txn.commit()
        count = journal.checkpoint(lambda kind, fields: applied.append(fields["seq"]))
        assert count == 3
        assert applied == [0, 1, 2]
        assert journal.pending_transactions == 0

    def test_checkpoint_resets_space(self, journal):
        free_before = journal.free_blocks
        txn = journal.begin()
        txn.add("op")
        txn.commit()
        assert journal.free_blocks < free_before
        journal.checkpoint(lambda k, f: None)
        assert journal.free_blocks == journal.num_blocks


class TestRecovery:
    def test_recover_committed_txns(self, device):
        journal = Journal(device, 0, 64)
        txn = journal.begin()
        txn.add("link", parent=1, name="a", ino=2)
        txn.commit()
        txn = journal.begin()
        txn.add("set_size", ino=2, size=99)
        txn.commit()
        # a fresh journal object = remount after crash
        recovered = Journal(device, 0, 64).recover()
        assert len(recovered) == 2
        assert recovered[0][0] == ("link", {"parent": 1, "name": "a", "ino": 2})
        assert recovered[1][0] == ("set_size", {"ino": 2, "size": 99})

    def test_recover_empty(self, device):
        journal = Journal(device, 0, 64)
        assert journal.recover() == []

    def test_recover_after_checkpoint_sees_nothing(self, device):
        journal = Journal(device, 0, 64)
        txn = journal.begin()
        txn.add("op")
        txn.commit()
        journal.checkpoint(lambda k, f: None)
        assert Journal(device, 0, 64).recover() == []

    def test_torn_commit_ignored(self, device):
        journal = Journal(device, 0, 64)
        txn = journal.begin()
        txn.add("good", seq=1)
        txn.commit()
        # simulate a torn second transaction: header without commit trailer
        import struct

        frame = bytearray(device.block_size)
        struct.pack_into("<IQI", frame, 0, 0x4A524E4C, 2, 100)
        device.write_blocks(journal._head, bytes(frame))
        recovered = Journal(device, 0, 64).recover()
        assert len(recovered) == 1  # torn txn dropped

    def test_garbage_region_recovers_empty(self, device):
        device.write_blocks(0, b"\xde\xad\xbe\xef" * 1024)
        assert Journal(device, 0, 64).recover() == []

    def test_recover_restores_pending_for_checkpoint(self, device):
        journal = Journal(device, 0, 64)
        txn = journal.begin()
        txn.add("op", v=1)
        txn.commit()
        fresh = Journal(device, 0, 64)
        fresh.recover()
        applied = []
        assert fresh.checkpoint(lambda k, f: applied.append(f["v"])) == 1
        assert applied == [1]

    def test_multi_block_transaction(self, device):
        journal = Journal(device, 0, 64)
        txn = journal.begin()
        txn.add("bulk", data="z" * 10_000)  # spans 3+ blocks
        txn.commit()
        recovered = Journal(device, 0, 64).recover()
        assert recovered[0][0][1]["data"] == "z" * 10_000
