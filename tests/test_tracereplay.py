"""Tests for the muxtrace format, generators, and replay engine."""

import pytest

from repro.bench.tracereplay import (
    CANONICAL_TRACE_PARAMS,
    KIB,
    BlockTrace,
    TraceOp,
    bursty_trace,
    canonical_trace,
    dumps_trace,
    load_canonical,
    parse_trace,
    phase_trace,
    replay_trace,
    traces_dir,
    zipf_trace,
)
from repro.errors import InvalidArgument
from repro.stack import build_stack


class TestFormat:
    def test_dumps_parse_round_trip(self):
        trace = zipf_trace(duration_ns=500_000, files=4, file_bytes=64 * KIB)
        again = parse_trace(dumps_trace(trace))
        assert again.ops == trace.ops
        assert again.files == trace.files
        assert again.file_bytes == trace.file_bytes
        assert again.comments == trace.comments

    def test_missing_magic_rejected(self):
        with pytest.raises(InvalidArgument, match="muxtrace"):
            parse_trace("# files 4\n# file_bytes 65536\n0 R 0 0 4096\n")

    def test_missing_headers_rejected(self):
        with pytest.raises(InvalidArgument, match="files"):
            parse_trace("# muxtrace v1\n0 R 0 0 4096\n")

    def test_bad_field_count_rejected(self):
        text = "# muxtrace v1\n# files 1\n# file_bytes 65536\n0 R 0 0\n"
        with pytest.raises(InvalidArgument, match="5 fields"):
            parse_trace(text)

    def test_bad_op_letter_rejected(self):
        text = "# muxtrace v1\n# files 1\n# file_bytes 65536\n0 X 0 0 4096\n"
        with pytest.raises(InvalidArgument, match="R, W or F"):
            parse_trace(text)


class TestValidate:
    def _trace(self, ops):
        return BlockTrace(ops, files=2, file_bytes=64 * KIB)

    def test_decreasing_arrivals_rejected(self):
        trace = self._trace(
            [TraceOp(100, "read", 0, 0, 4096), TraceOp(50, "read", 0, 0, 4096)]
        )
        with pytest.raises(InvalidArgument, match="non-decreasing"):
            trace.validate()

    def test_file_id_out_of_range_rejected(self):
        trace = self._trace([TraceOp(0, "read", 2, 0, 4096)])
        with pytest.raises(InvalidArgument, match="out of range"):
            trace.validate()

    def test_fsync_with_length_rejected(self):
        trace = self._trace([TraceOp(0, "fsync", 0, 0, 4096)])
        with pytest.raises(InvalidArgument, match="fsync"):
            trace.validate()

    def test_op_past_file_bytes_rejected(self):
        trace = self._trace([TraceOp(0, "write", 0, 60 * KIB, 8 * KIB)])
        with pytest.raises(InvalidArgument, match="past file_bytes"):
            trace.validate()

    def test_bad_op_name_rejected(self):
        trace = self._trace([TraceOp(0, "flush", 0, 0, 0)])
        with pytest.raises(InvalidArgument, match="bad op"):
            trace.validate()

    def test_truncated_keeps_prefix(self):
        trace = zipf_trace(duration_ns=1_000_000, files=4, file_bytes=64 * KIB)
        half = trace.truncated(0.5)
        cutoff = int(trace.duration_ns * 0.5)
        assert half.ops == [op for op in trace.ops if op.arrival_ns <= cutoff]
        assert half.files == trace.files

    def test_truncated_fraction_bounds(self):
        trace = zipf_trace(duration_ns=100_000, files=2, file_bytes=64 * KIB)
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(InvalidArgument):
                trace.truncated(bad)


class TestGenerators:
    def test_deterministic_in_seed(self):
        kwargs = dict(duration_ns=1_000_000, files=8, file_bytes=256 * KIB)
        for gen in (zipf_trace, bursty_trace, phase_trace):
            assert gen(**kwargs).ops == gen(**kwargs).ops
            assert gen(seed=1, **kwargs).ops != gen(seed=2, **kwargs).ops

    def test_generated_traces_validate(self):
        kwargs = dict(duration_ns=1_000_000, files=8, file_bytes=256 * KIB)
        for gen in (zipf_trace, bursty_trace, phase_trace):
            gen(**kwargs).validate()  # raises on any malformed record

    def test_bursty_fsyncs_follow_bursts(self):
        trace = bursty_trace(
            duration_ns=2_000_000,
            files=8,
            file_bytes=256 * KIB,
            burst_gap_ns=500_000,
            burst_size=4,
        )
        mix = trace.op_mix()
        assert mix.get("fsync", 0) > 0
        writes_at = {op.arrival_ns for op in trace.ops if op.op == "write"}
        for op in trace.ops:
            if op.op == "fsync":
                assert op.arrival_ns - 1 in writes_at

    def test_phase_rotates_hot_set(self):
        trace = phase_trace(
            duration_ns=4_000_000,
            files=16,
            file_bytes=256 * KIB,
            alpha=1.5,
            phases=2,
            seed=3,
        )
        half = trace.duration_ns // 2
        first = [op.file_id for op in trace.ops if op.arrival_ns < half]
        second = [op.file_id for op in trace.ops if op.arrival_ns >= half]
        top = lambda ids: max(set(ids), key=ids.count)
        assert top(first) != top(second)


class TestCanonical:
    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidArgument, match="unknown canonical"):
            canonical_trace("nope")

    @pytest.mark.parametrize("name", sorted(CANONICAL_TRACE_PARAMS))
    def test_checked_in_file_matches_generator(self, name):
        """benchmarks/traces/<name>.muxtrace is exactly the pinned params'
        output — the file and CANONICAL_TRACE_PARAMS are one contract."""
        path = traces_dir() / f"{name}.muxtrace"
        assert path.is_file(), f"missing checked-in trace {path}"
        assert path.read_text() == dumps_trace(canonical_trace(name))

    @pytest.mark.parametrize("name", sorted(CANONICAL_TRACE_PARAMS))
    def test_load_canonical(self, name):
        trace = load_canonical(name)
        trace.validate()
        assert trace.ops


class TestReplay:
    def test_small_replay_completes_all_ops(self):
        trace = zipf_trace(
            duration_ns=300_000, files=4, file_bytes=128 * KIB, mean_gap_ns=10_000
        )
        stack = build_stack(enable_cache=False)
        result = replay_trace(stack, trace, ring_depth=8, maintain_every=16)
        assert result.submitted == len(trace.ops)
        assert result.errors == 0
        mix = trace.op_mix()
        assert result.reads.count == mix.get("read", 0)
        # fsyncs land in the writes histogram alongside writes
        assert result.writes.count == mix.get("write", 0) + mix.get("fsync", 0)
        assert result.final_now_ns > trace.duration_ns

    def test_replay_is_deterministic(self):
        trace = bursty_trace(
            duration_ns=300_000,
            files=4,
            file_bytes=128 * KIB,
            burst_gap_ns=100_000,
            burst_size=4,
        )
        runs = []
        for _ in range(2):
            stack = build_stack(enable_cache=False)
            result = replay_trace(stack, trace, ring_depth=8)
            runs.append(
                (result.percentiles_ns("read"), result.percentiles_ns("write"))
            )
        assert runs[0] == runs[1]
