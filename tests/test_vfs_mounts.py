"""Unit tests for the VFS mount table and dispatch."""

import pytest

from repro.errors import CrossDevice, FileNotFound, InvalidArgument
from repro.vfs.interface import OpenFlags
from repro.vfs.vfs import VFS


@pytest.fixture
def vfs(clock, nova, xfs):
    v = VFS(clock)
    v.mount("/pm", nova)
    v.mount("/ssd", xfs)
    return v


class TestMountTable:
    def test_resolve_longest_prefix(self, vfs, nova):
        fs, inner = vfs.resolve("/pm/a/b")
        assert fs is nova
        assert inner == "/a/b"

    def test_resolve_mount_point_itself(self, vfs, xfs):
        fs, inner = vfs.resolve("/ssd")
        assert fs is xfs
        assert inner == "/"

    def test_unmounted_path(self, vfs):
        with pytest.raises(FileNotFound):
            vfs.resolve("/other/x")

    def test_duplicate_mount_rejected(self, vfs, ext4):
        with pytest.raises(InvalidArgument):
            vfs.mount("/pm", ext4)

    def test_nested_mount_rejected(self, vfs, ext4):
        with pytest.raises(InvalidArgument):
            vfs.mount("/pm/sub", ext4)

    def test_unmount(self, vfs, nova):
        assert vfs.unmount("/pm") is nova
        with pytest.raises(FileNotFound):
            vfs.resolve("/pm/x")

    def test_unmount_missing(self, vfs):
        with pytest.raises(FileNotFound):
            vfs.unmount("/nope")

    def test_mounts_snapshot(self, vfs):
        assert set(vfs.mounts()) == {"/pm", "/ssd"}


class TestDispatch:
    def test_write_read_through_vfs(self, vfs):
        vfs.write_file("/pm/f", b"data")
        assert vfs.read_file("/pm/f") == b"data"

    def test_handle_ops(self, vfs):
        handle = vfs.create("/ssd/f")
        vfs.write(handle, 0, b"abcdef")
        assert vfs.read(handle, 2, 3) == b"cde"
        vfs.truncate(handle, 3)
        assert vfs.getattr("/ssd/f").size == 3
        vfs.fsync(handle)
        vfs.close(handle)

    def test_rename_within_fs(self, vfs):
        vfs.write_file("/pm/a", b"1")
        vfs.rename("/pm/a", "/pm/b")
        assert vfs.read_file("/pm/b") == b"1"

    def test_rename_across_fs_rejected(self, vfs):
        vfs.write_file("/pm/a", b"1")
        with pytest.raises(CrossDevice):
            vfs.rename("/pm/a", "/ssd/a")

    def test_mkdir_readdir(self, vfs):
        vfs.mkdir("/pm/d")
        vfs.write_file("/pm/d/f", b"x")
        assert vfs.readdir("/pm/d") == ["f"]
        vfs.unlink("/pm/d/f")
        vfs.rmdir("/pm/d")
        assert vfs.readdir("/pm") == []

    def test_exists(self, vfs):
        assert not vfs.exists("/pm/ghost")
        vfs.write_file("/pm/real", b"")
        assert vfs.exists("/pm/real")

    def test_statfs(self, vfs, nova):
        stats = vfs.statfs("/pm/whatever")
        assert stats.total_blocks == nova.statfs().total_blocks

    def test_dispatch_charges_time(self, vfs, clock):
        t0 = clock.now_ns
        vfs.exists("/pm/x")
        assert clock.now_ns > t0

    def test_open_create_flag(self, vfs):
        handle = vfs.open("/pm/new", OpenFlags.RDWR | OpenFlags.CREAT)
        vfs.write(handle, 0, b"z")
        vfs.close(handle)
        assert vfs.read_file("/pm/new") == b"z"
