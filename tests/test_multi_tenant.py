"""Open-loop multi-tenant traffic engine: schedules, tails, QoS, goldens."""

import pytest

from repro.bench.multi_tenant import (
    TenantSpec,
    generate_schedule,
    run_multi_tenant,
)
from repro.core.qos import IoClass
from repro.errors import InvalidArgument
from repro.stack import build_stack

KIB = 1024
MS = 1_000_000


def _specs():
    return [
        TenantSpec("a", mean_interarrival_ns=20_000, files=4, read_fraction=0.9),
        TenantSpec("b", mean_interarrival_ns=30_000, files=2, read_fraction=0.5),
    ]


class TestSchedule:
    def test_deterministic_for_seed(self):
        one = generate_schedule(_specs(), duration_ns=2 * MS, seed=7)
        two = generate_schedule(_specs(), duration_ns=2 * MS, seed=7)
        assert one == two
        other = generate_schedule(_specs(), duration_ns=2 * MS, seed=8)
        assert one != other

    def test_sorted_and_open_loop(self):
        events = generate_schedule(_specs(), duration_ns=2 * MS, seed=7)
        assert events
        keys = [(e[0], e[1], e[2]) for e in events]
        assert keys == sorted(keys)
        # open loop: every arrival is fixed before execution, inside horizon
        assert all(0 < e[0] < 2 * MS for e in events)

    def test_zipf_skews_toward_hot_files(self):
        spec = TenantSpec("z", mean_interarrival_ns=1_000, files=8, zipf_alpha=1.2)
        events = generate_schedule([spec], duration_ns=2 * MS, seed=3)
        counts = [0] * spec.files
        for e in events:
            counts[e[4]] += 1
        # rank 0 is the hot file; it must dominate the coldest rank
        assert counts[0] > 3 * max(1, counts[-1])

    def test_bursty_ties_share_one_arrival(self):
        spec = TenantSpec(
            "burst", mean_interarrival_ns=10_000, arrival="bursty", burst_size=4
        )
        events = generate_schedule([spec], duration_ns=2 * MS, seed=5)
        arrivals = [e[0] for e in events]
        # whole bursts land at one instant: 4 ops per distinct arrival
        assert len(set(arrivals)) * spec.burst_size == len(arrivals)

    def test_spec_validation(self):
        with pytest.raises(InvalidArgument):
            TenantSpec("bad", mean_interarrival_ns=0)
        with pytest.raises(InvalidArgument):
            TenantSpec("bad", mean_interarrival_ns=1, arrival="sawtooth")
        with pytest.raises(InvalidArgument):
            TenantSpec("bad", mean_interarrival_ns=1, read_fraction=1.5)
        with pytest.raises(InvalidArgument):
            TenantSpec("bad", mean_interarrival_ns=1, io_bytes=8 * KIB, file_bytes=KIB)


class TestEngine:
    def test_every_offered_op_completes(self):
        stack = build_stack(enable_cache=False)
        res = run_multi_tenant(stack, _specs(), duration_ns=1 * MS, ring_depth=4)
        assert res.offered_ops > 0
        assert res.completed_ops == res.offered_ops
        for tenant in res.tenants.values():
            assert tenant.errors == 0
            assert tenant.ops == tenant.submitted

    def test_run_is_deterministic(self):
        def one_run():
            stack = build_stack(enable_cache=False)
            res = run_multi_tenant(stack, _specs(), duration_ns=1 * MS, ring_depth=4)
            return res.percentiles_ns("read"), res.percentiles_ns("write"), stack.clock.now_ns

        assert one_run() == one_run()

    def test_latency_measured_from_intended_arrival(self):
        # saturate one slow tenant: queueing delay must show up in the
        # tail even though each op's service time is roughly constant
        spec = TenantSpec("hot", mean_interarrival_ns=500, files=2, read_fraction=1.0)
        stack = build_stack(enable_cache=False)
        res = run_multi_tenant(stack, [spec], duration_ns=200_000, ring_depth=1)
        p = res.percentiles_ns("read")
        assert p["p99"] > 10 * p["p50"] or p["p99"] > 100_000

    def test_qos_class_registered_and_tagged(self):
        spec = TenantSpec(
            "batch",
            mean_interarrival_ns=50_000,
            read_fraction=0.5,
            qos_class=IoClass("batch", quota_bytes_per_sec=50 * KIB * KIB),
        )
        stack = build_stack(enable_cache=False)
        res = run_multi_tenant(stack, [spec], duration_ns=1 * MS)
        assert stack.mux.qos is not None
        assert "batch" in stack.mux.qos.classes()
        assert res.completed_ops == res.offered_ops


class TestAsyncVsSerialized:
    def _tail(self, depth):
        from repro.bench.wallclock import _mt_specs, _mt_stack

        stack = _mt_stack()
        res = run_multi_tenant(
            stack, _mt_specs(1.0), duration_ns=300_000, ring_depth=depth
        )
        return res.percentiles_ns("read")

    def test_async_ring_cuts_p99_3x(self):
        # the PR's acceptance criterion: same offered load, same schedule,
        # >=3x lower read p99 with depth-8 rings than serialized depth-1
        wide = self._tail(depth=8)
        narrow = self._tail(depth=1)
        assert narrow["p99"] >= 3 * wide["p99"]
        assert narrow["p999"] >= 3 * wide["p999"]


class TestWallclockWorkload:
    def test_smoke_profile_shape(self):
        from repro.bench.wallclock import WORKLOADS, _wl_multi_tenant

        assert any(name == "multi_tenant" for name, _ in WORKLOADS)
        result = _wl_multi_tenant(smoke=True)
        fp = result["fingerprint"]
        assert "depth1_now_ns" in fp
        assert "load_1x" in fp["tails"]
        point = fp["tails"]["load_1x"]
        for key in ("read_p50", "read_p99", "read_p999"):
            assert point["async"][key] > 0
            assert point["depth1"][key] > 0
        assert result["events"]["p99_ratio_x"] >= 3.0


class TestFairnessAcceptance:
    """Bound the interference a tenant may suffer from sharing the stack.

    ``fairness_slowdowns`` replays the same open-loop schedule twice per
    tenant — once shared, once with the stack to itself — and the ratio of
    the two tail latencies is the slowdown.  The acceptance bound is
    deliberately loose (4x at the p99): it exists to catch pathological
    starvation regressions, not to pin the exact interference level.
    """

    def test_p99_slowdown_stays_bounded(self):
        from repro.bench.multi_tenant import fairness_slowdowns, slowdown_x

        _, table = fairness_slowdowns(
            lambda: build_stack(), _specs(), duration_ns=2 * MS
        )
        assert set(table) == {"a", "b"}
        for tenant, entry in table.items():
            assert entry["isolated_p99_ns"] > 0, tenant
            assert entry["shared_p99_ns"] >= entry["shared_p50_ns"], tenant
            assert 0 < slowdown_x(entry) < 4.0, (tenant, entry)
            assert 0 < slowdown_x(entry, "p50") < 4.0, (tenant, entry)

    def test_isolated_replay_is_deterministic(self):
        from repro.bench.multi_tenant import fairness_slowdowns

        _, one = fairness_slowdowns(
            lambda: build_stack(), _specs(), duration_ns=2 * MS
        )
        _, two = fairness_slowdowns(
            lambda: build_stack(), _specs(), duration_ns=2 * MS
        )
        assert one == two
