"""Latency histograms + O_SYNC semantics."""

import pytest

from repro.core.policies import TpfsPolicy
from repro.sim.histogram import LatencyHistogram
from repro.stack import build_stack
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024


class TestLatencyHistogram:
    def test_basic_stats(self):
        hist = LatencyHistogram()
        for value in (100, 200, 300, 400):
            hist.record(value)
        assert hist.count == 4
        assert hist.mean_ns == 250
        assert hist.max_ns == 400
        assert hist.min_seen_ns == 100

    def test_percentiles_bounded_by_bucket(self):
        hist = LatencyHistogram(growth=1.07)
        for value in range(1000, 2000):
            hist.record(value)
        p50 = hist.percentile(0.5)
        assert 1400 <= p50 <= 1650  # within one bucket of the true median
        assert hist.percentile(1.0) == hist.max_ns

    def test_p99_catches_tail(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.record(1000)
        hist.record(1_000_000)
        assert hist.percentile(0.99) <= 1100
        assert hist.percentile(0.999) >= 900_000

    def test_interpolates_within_bucket(self):
        # 100 samples land in one middle bucket (the envelope is widened by
        # one outlier on each side); quantiles should move smoothly through
        # that bucket instead of snapping to its upper bound.
        hist = LatencyHistogram(growth=1.07)
        hist.record(10)
        for _ in range(100):
            hist.record(1000)
        hist.record(1_000_000)
        index = hist._bucket_index(1000)
        lower = hist._bucket_lower_ns(index)
        upper = hist._bucket_upper_ns(index)
        p25 = hist.percentile(0.25)
        p75 = hist.percentile(0.75)
        assert lower < p25 < p75 < upper  # strictly increasing within the bucket

    def test_identical_samples_collapse_to_value(self):
        # With every sample equal, clamping to the observed envelope makes
        # every quantile exactly that value — no bucket-bound inflation.
        hist = LatencyHistogram(growth=1.07)
        for _ in range(50):
            hist.record(777)
        assert hist.percentile(0.5) == 777
        assert hist.percentile(0.999) == 777

    def test_p999_not_quantized_to_bucket_bound(self):
        # Two histograms whose tails differ within one bucket must report
        # different p999 values — the pre-interpolation behaviour returned
        # the shared bucket upper bound for both.
        a = LatencyHistogram(growth=1.07)
        b = LatencyHistogram(growth=1.07)
        for _ in range(2000):
            a.record(1000)
            b.record(1000)
        for _ in range(5):
            a.record(1_000_000)
        for _ in range(1):
            b.record(1_000_000)
        assert a.percentile(0.999) > b.percentile(0.999)

    def test_percentiles_ns_keys(self):
        hist = LatencyHistogram()
        for value in (100, 200, 400, 800):
            hist.record(value)
        out = hist.percentiles_ns(0.5, 0.99, 0.999)
        assert set(out) == {"p50", "p99", "p999"}
        assert all(isinstance(v, int) for v in out.values())
        assert out["p50"] <= out["p99"] <= out["p999"]

    def test_invalid_inputs(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(-1)
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)

    def test_merge(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        a.record(100)
        b.record(300)
        a.merge(b)
        assert a.count == 2
        assert a.max_ns == 300

    def test_merge_parameter_mismatch(self):
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.07).merge(LatencyHistogram(growth=1.5))

    def test_summary(self):
        hist = LatencyHistogram()
        hist.record(2000)
        summary = hist.summary_us()
        assert summary["count"] == 1
        assert summary["mean_us"] == 2.0

    def test_empty(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.99) == 0.0
        assert hist.mean_ns == 0.0

    def test_buckets_listing(self):
        hist = LatencyHistogram()
        hist.record(5)
        hist.record(10_000)
        pairs = hist.buckets()
        assert len(pairs) == 2
        assert sum(count for _, count in pairs) == 2


class TestMuxLatencyRecording:
    def test_disabled_by_default(self, stack):
        mux = stack.mux
        mux.write_file("/f", b"x")
        assert mux.latencies is None

    def test_records_reads_and_writes(self, stack):
        mux = stack.mux
        mux.enable_latency_recording()
        handle = mux.create("/f")
        mux.write(handle, 0, b"x" * 5000)
        mux.read(handle, 0, 5000)
        mux.read(handle, 100, 10)
        assert mux.latencies["write"].count == 1
        assert mux.latencies["read"].count == 2
        assert mux.latencies["read"].mean_ns > 0
        mux.close(handle)


class TestOSync:
    def test_sync_write_durable_without_fsync(self):
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        from repro.core.policies import PinnedPolicy

        mux.policy = PinnedPolicy(stack.tier_id("hdd"))
        handle = mux.open("/f", OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.SYNC)
        mux.write(handle, 0, b"SYNCWRITE")
        # crash immediately: O_SYNC means the data must already be durable
        mux.crash()
        mux.recover()
        assert mux.read_file("/f") == b"SYNCWRITE"

    def test_sync_writes_slower(self):
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        from repro.core.policies import PinnedPolicy

        mux.policy = PinnedPolicy(stack.tier_id("hdd"))
        clock = stack.clock
        plain = mux.open("/plain", OpenFlags.RDWR | OpenFlags.CREAT)
        t0 = clock.now_ns
        mux.write(plain, 0, bytes(4096))
        plain_cost = clock.now_ns - t0
        sync = mux.open("/sync", OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.SYNC)
        t0 = clock.now_ns
        mux.write(sync, 0, bytes(4096))
        sync_cost = clock.now_ns - t0
        assert sync_cost > plain_cost * 5
        mux.close(plain)
        mux.close(sync)

    def test_tpfs_routes_sync_writes_to_pm(self):
        stack = build_stack(policy=TpfsPolicy(), enable_cache=False)
        mux = stack.mux
        # large writes normally go to hdd; O_SYNC forces them to pm
        handle = mux.open("/s", OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.SYNC)
        mux.write(handle, 0, bytes(4 * MIB))
        inode = mux.ns.get(handle.ino)
        assert inode.blt.tiers_used() == [stack.tier_id("pm")]
        mux.close(handle)

    def test_native_sync_write(self, ext4):
        handle = ext4.open("/f", OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.SYNC)
        ext4.write(handle, 0, b"durable now")
        ext4.crash()
        ext4.recover()
        assert ext4.read_file("/f") == b"durable now"
