"""Remaining unit coverage: Stat/FsStats structures and the inode table."""

import pytest

from repro.errors import FsError, InvalidArgument
from repro.fscommon.inode import Inode, InodeTable
from repro.vfs.stat import (
    AGGREGATED_ATTRS,
    SINGLE_OWNER_ATTRS,
    FileType,
    FsStats,
    Stat,
)


class TestStat:
    def test_is_dir(self):
        assert Stat(1, FileType.DIRECTORY).is_dir
        assert not Stat(1, FileType.REGULAR).is_dir

    def test_copy_independent(self):
        stat = Stat(1, FileType.REGULAR, extra={"k": 1})
        dup = stat.copy()
        dup.extra["k"] = 2
        dup.size = 99
        assert stat.extra["k"] == 1
        assert stat.size == 0

    def test_attr_partitions(self):
        assert "size" in SINGLE_OWNER_ATTRS
        assert "blocks" in AGGREGATED_ATTRS
        assert not set(SINGLE_OWNER_ATTRS) & set(AGGREGATED_ATTRS)


class TestFsStats:
    def test_derived_quantities(self):
        stats = FsStats(block_size=4096, total_blocks=100, free_blocks=25)
        assert stats.used_blocks == 75
        assert stats.total_bytes == 409600
        assert stats.free_bytes == 25 * 4096
        assert stats.used_bytes == 75 * 4096
        assert stats.utilization == 0.75

    def test_empty_fs(self):
        stats = FsStats(4096, 0, 0)
        assert stats.utilization == 0.0


class TestInode:
    def test_regular_defaults(self):
        inode = Inode(5, FileType.REGULAR, now=3.0, mode=0o640)
        assert inode.nlink == 1
        assert inode.size == 0
        assert inode.atime == inode.mtime == inode.ctime == 3.0
        assert not inode.is_dir

    def test_directory_defaults(self):
        inode = Inode(5, FileType.DIRECTORY, now=0.0, mode=0o755)
        assert inode.nlink == 2
        assert inode.is_dir

    def test_stat_blocks_in_512_units(self):
        inode = Inode(5, FileType.REGULAR, now=0.0, mode=0o644)
        inode.allocated_blocks = 3
        assert inode.stat(4096).blocks == 3 * 8

    def test_apply_attrs(self):
        inode = Inode(5, FileType.REGULAR, now=0.0, mode=0o644)
        inode.apply_attrs({"mtime": 7.5, "mode": 0o600})
        assert inode.mtime == 7.5
        assert inode.mode == 0o600

    def test_apply_attrs_validation(self):
        inode = Inode(5, FileType.REGULAR, now=0.0, mode=0o644)
        with pytest.raises(InvalidArgument):
            inode.apply_attrs({"mtime": "not a number"})
        with pytest.raises(InvalidArgument):
            inode.apply_attrs({"mode": 1.5})
        with pytest.raises(InvalidArgument):
            inode.apply_attrs({"bogus": 1})


class TestInodeTable:
    def test_alloc_sequential_inos(self):
        table = InodeTable()
        a = table.alloc(FileType.DIRECTORY, 0.0, 0o755)
        b = table.alloc(FileType.REGULAR, 0.0, 0o644)
        assert a.ino == InodeTable.ROOT_INO
        assert b.ino == a.ino + 1

    def test_get_and_maybe_get(self):
        table = InodeTable()
        inode = table.alloc(FileType.REGULAR, 0.0, 0o644)
        assert table.get(inode.ino) is inode
        assert table.maybe_get(inode.ino) is inode
        assert table.maybe_get(999) is None
        with pytest.raises(FsError):
            table.get(999)

    def test_free(self):
        table = InodeTable()
        inode = table.alloc(FileType.REGULAR, 0.0, 0o644)
        assert table.free(inode.ino) is inode
        with pytest.raises(FsError):
            table.free(inode.ino)

    def test_restore_for_recovery(self):
        table = InodeTable()
        restored = table.restore(7, FileType.REGULAR, 1.0, 0o644)
        assert restored.ino == 7
        # subsequent allocations never collide with restored numbers
        fresh = table.alloc(FileType.REGULAR, 0.0, 0o644)
        assert fresh.ino == 8
        with pytest.raises(FsError):
            table.restore(7, FileType.REGULAR, 1.0, 0o644)

    def test_iteration_and_len(self):
        table = InodeTable()
        table.alloc(FileType.REGULAR, 0.0, 0o644)
        table.alloc(FileType.REGULAR, 0.0, 0o644)
        assert len(table) == 2
        assert len(list(table)) == 2
