"""Smaller interface pieces: flags, handles, errors, shared helpers."""

import errno

import pytest

from repro import errors
from repro.errors import BadFileHandle, InvalidArgument, NotSupported
from repro.vfs.interface import FileHandle, FileSystem, OpenFlags, attrs_for_update


class TestOpenFlags:
    def test_readable(self):
        assert OpenFlags.readable(OpenFlags.RDONLY)
        assert OpenFlags.readable(OpenFlags.RDWR)
        assert not OpenFlags.readable(OpenFlags.WRONLY)

    def test_writable(self):
        assert OpenFlags.writable(OpenFlags.WRONLY)
        assert OpenFlags.writable(OpenFlags.RDWR)
        assert not OpenFlags.writable(OpenFlags.RDONLY)

    def test_flag_combinations(self):
        flags = OpenFlags.RDWR | OpenFlags.CREAT | OpenFlags.TRUNC
        assert OpenFlags.readable(flags)
        assert OpenFlags.writable(flags)
        assert flags & OpenFlags.CREAT
        assert flags & OpenFlags.TRUNC
        assert not flags & OpenFlags.APPEND


class TestFileHandle:
    def test_lifecycle(self, nova):
        handle = nova.create("/f")
        assert handle.is_open
        handle.ensure_open()
        nova.close(handle)
        assert not handle.is_open
        with pytest.raises(BadFileHandle):
            handle.ensure_open()

    def test_carries_identity(self, nova):
        handle = nova.create("/f")
        assert handle.fs is nova
        assert handle.path == "/f"
        assert handle.ino > 0
        nova.close(handle)


class TestAttrsForUpdate:
    def test_accepts_known(self):
        clean = attrs_for_update({"atime": 1.0, "mode": 0o600})
        assert clean == {"atime": 1.0, "mode": 0o600}

    def test_rejects_unknown(self):
        with pytest.raises(InvalidArgument):
            attrs_for_update({"size": 5})

    def test_returns_copy(self):
        original = {"mtime": 2.0}
        clean = attrs_for_update(original)
        clean["mtime"] = 9.0
        assert original["mtime"] == 2.0


class TestSharedHelpers:
    def test_exists(self, any_fs):
        assert not any_fs.exists("/x")
        any_fs.write_file("/x", b"")
        assert any_fs.exists("/x")

    def test_read_write_file_roundtrip(self, any_fs):
        any_fs.write_file("/f", b"payload")
        assert any_fs.read_file("/f") == b"payload"

    def test_write_file_replaces(self, any_fs):
        any_fs.write_file("/f", b"long original content")
        any_fs.write_file("/f", b"new")
        assert any_fs.read_file("/f") == b"new"

    def test_append_helper(self, any_fs):
        handle = any_fs.create("/f")
        any_fs.append(handle, b"one")
        any_fs.append(handle, b"two")
        assert any_fs.read_file("/f") == b"onetwo"
        any_fs.close(handle)

    def test_check_flags_rejects_garbage(self, any_fs):
        with pytest.raises(InvalidArgument):
            any_fs.check_flags(0x3)

    def test_punch_hole_default_not_supported(self, clock):
        class MinimalFs(FileSystem):
            fs_name = "minimal"

            def create(self, path, mode=0o644):
                raise NotImplementedError

            open = unlink = rename = mkdir = rmdir = readdir = create
            read = write = truncate = fsync = close = create
            getattr = setattr = statfs = create

        handle = FileHandle(MinimalFs(), 1, "/f", OpenFlags.RDWR)
        with pytest.raises(NotSupported):
            MinimalFs().punch_hole(handle, 0, 4096)


class TestErrorHierarchy:
    def test_errnos(self):
        assert errors.FileNotFound.errno == errno.ENOENT
        assert errors.FileExists.errno == errno.EEXIST
        assert errors.NoSpace.errno == errno.ENOSPC
        assert errors.NotADirectory.errno == errno.ENOTDIR
        assert errors.IsADirectory.errno == errno.EISDIR
        assert errors.DirectoryNotEmpty.errno == errno.ENOTEMPTY
        assert errors.BadFileHandle.errno == errno.EBADF
        assert errors.CrossDevice.errno == errno.EXDEV

    def test_hierarchy(self):
        assert issubclass(errors.FileNotFound, errors.FsError)
        assert issubclass(errors.FsError, errors.ReproError)
        assert issubclass(errors.MigrationUnsupported, errors.MigrationError)
        assert issubclass(errors.MigrationConflict, errors.MigrationError)

    def test_default_message(self):
        exc = errors.FileNotFound()
        assert "ENOENT" in str(exc)

    def test_custom_message(self):
        exc = errors.NoSpace("tier pm is full")
        assert str(exc) == "tier pm is full"
