"""Unit + property tests for Multi-generational LRU."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mglru import MultiGenLru


class TestBasics:
    def test_insert_and_contains(self):
        lru = MultiGenLru(4)
        lru.insert("a")
        assert "a" in lru
        assert len(lru) == 1

    def test_insert_idempotent(self):
        lru = MultiGenLru(4)
        lru.insert("a")
        lru.insert("a")
        assert len(lru) == 1

    def test_new_entries_in_youngest(self):
        lru = MultiGenLru(8)
        lru.insert("a")
        assert lru.generation_of("a") == 0

    def test_touch_missing(self):
        lru = MultiGenLru(4)
        assert lru.touch("ghost") is False

    def test_remove(self):
        lru = MultiGenLru(4)
        lru.insert("a")
        assert lru.remove("a") is True
        assert "a" not in lru
        assert lru.remove("a") is False

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MultiGenLru(0)
        with pytest.raises(ValueError):
            MultiGenLru(4, num_generations=1)


class TestEviction:
    def test_capacity_enforced(self):
        lru = MultiGenLru(4)
        for i in range(10):
            lru.insert(i)
        assert len(lru) == 4

    def test_eviction_returns_victims(self):
        lru = MultiGenLru(2)
        assert lru.insert("a") == []
        assert lru.insert("b") == []
        evicted = lru.insert("c")
        assert evicted == ["a"]

    def test_eviction_prefers_oldest_generation(self):
        lru = MultiGenLru(8, num_generations=2)
        for i in range(8):
            lru.insert(i)
        # whatever was aged into older generations goes first
        victims = lru.insert("new")
        assert victims
        assert all(v in range(8) for v in victims)

    def test_touched_entries_survive(self):
        lru = MultiGenLru(4)
        for key in ("a", "b", "c", "d"):
            lru.insert(key)
        lru.touch("a")  # promote back to youngest
        lru.insert("e")
        assert "a" in lru

    def test_eviction_counter(self):
        lru = MultiGenLru(2)
        lru.insert("a")
        lru.insert("b")
        lru.insert("c")
        assert lru.evictions == 1


class TestAging:
    def test_age_shifts_generations(self):
        lru = MultiGenLru(100, num_generations=3)
        lru.insert("a")
        lru.age()
        assert lru.generation_of("a") == 1
        lru.age()
        assert lru.generation_of("a") == 2
        lru.age()
        assert lru.generation_of("a") == 2  # stays in the oldest

    def test_age_counter(self):
        lru = MultiGenLru(100)
        before = lru.ages
        lru.age()
        assert lru.ages == before + 1

    def test_auto_aging_on_insert_pressure(self):
        lru = MultiGenLru(16, num_generations=4)
        for i in range(16):
            lru.insert(i)
        assert lru.ages > 0

    def test_touch_after_age_promotes(self):
        lru = MultiGenLru(100)
        lru.insert("a")
        lru.age()
        lru.touch("a")
        assert lru.generation_of("a") == 0


@settings(max_examples=150, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "touch", "remove", "age"]), st.integers(0, 30)),
        max_size=80,
    ),
    capacity=st.integers(1, 16),
    gens=st.integers(2, 5),
)
def test_mglru_invariants(ops, capacity, gens):
    lru = MultiGenLru(capacity, num_generations=gens)
    live = set()
    for op, key in ops:
        if op == "insert":
            evicted = lru.insert(key)
            live.add(key)
            live -= set(evicted)
        elif op == "touch":
            assert lru.touch(key) == (key in live)
        elif op == "remove":
            assert lru.remove(key) == (key in live)
            live.discard(key)
        else:
            lru.age()
        lru.check_invariants()
    assert {k for k in live} == {k for k in live if k in lru}
    assert len(lru) == len(live)
