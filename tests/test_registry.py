"""Tier registry + runtime add/remove of tiers (§2.1)."""

import pytest

from repro.core.policies import PinnedPolicy
from repro.core.registry import TierRegistry
from repro.devices.profile import (
    OPTANE_PMEM_200,
    OPTANE_SSD_P4800X,
    SEAGATE_EXOS_X18,
)
from repro.errors import InvalidArgument, ReproError
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


class TestTierRegistry:
    def test_default_rank_by_device_kind(self, nova, xfs, ext4):
        registry = TierRegistry()
        hdd_tier = registry.add("hdd", ext4, "/h", SEAGATE_EXOS_X18)
        pm_tier = registry.add("pm", nova, "/p", OPTANE_PMEM_200)
        ssd_tier = registry.add("ssd", xfs, "/s", OPTANE_SSD_P4800X)
        assert [t.name for t in registry.ordered()] == ["pm", "ssd", "hdd"]
        assert registry.fastest() is pm_tier

    def test_explicit_rank_overrides(self, nova, xfs):
        registry = TierRegistry()
        registry.add("a", nova, "/a", OPTANE_PMEM_200, rank=5)
        registry.add("b", xfs, "/b", OPTANE_SSD_P4800X, rank=0)
        assert registry.ordered()[0].name == "b"

    def test_duplicate_name_rejected(self, nova, xfs):
        registry = TierRegistry()
        registry.add("t", nova, "/a", OPTANE_PMEM_200)
        with pytest.raises(InvalidArgument):
            registry.add("t", xfs, "/b", OPTANE_SSD_P4800X)

    def test_remove(self, nova):
        registry = TierRegistry()
        tier = registry.add("t", nova, "/a", OPTANE_PMEM_200)
        registry.remove(tier.tier_id)
        assert len(registry) == 0
        with pytest.raises(ReproError):
            registry.get(tier.tier_id)

    def test_by_name(self, nova):
        registry = TierRegistry()
        tier = registry.add("t", nova, "/a", OPTANE_PMEM_200)
        assert registry.by_name("t") is tier
        with pytest.raises(ReproError):
            registry.by_name("ghost")

    def test_states(self, nova):
        registry = TierRegistry()
        registry.add("t", nova, "/a", OPTANE_PMEM_200)
        states = registry.states()
        assert len(states) == 1
        assert states[0].free_bytes > 0


class TestRuntimeTierManagement:
    def test_add_tier_at_runtime(self):
        """§2.1: adding a device can be done at runtime."""
        from repro.devices.ssd import SolidStateDrive
        from repro.fs.xfs import XfsFileSystem

        stack = build_stack(tiers=["pm"], enable_cache=False)
        mux = stack.mux
        mux.write_file("/before", b"old data")
        new_dev = SolidStateDrive("ssd-late", 32 * MIB, stack.clock)
        new_fs = XfsFileSystem("xfs-late", new_dev, stack.clock)
        stack.vfs.mount("/tiers/late", new_fs)
        tier = mux.add_tier("late", new_fs, "/tiers/late", OPTANE_SSD_P4800X)
        assert tier.tier_id in mux.tier_ids()
        # the new tier is immediately usable
        mux.policy = PinnedPolicy(tier.tier_id)
        mux.write_file("/after", b"new data")
        assert stack.vfs.exists("/tiers/late/after")
        assert mux.read_file("/before") == b"old data"

    def test_remove_tier_migrates_data_off(self, stack_nocache):
        """§2.1: to remove a device, data must be migrated first."""
        stack = stack_nocache
        mux = stack.mux
        pm_id = stack.tier_id("pm")
        handle = mux.create("/f")
        mux.write(handle, 0, bytes(32 * BS))  # lands on pm
        inode = mux.ns.get(handle.ino)
        assert inode.blt.blocks_on(pm_id) == 32
        mux.remove_tier(pm_id)
        assert pm_id not in mux.tier_ids()
        assert inode.blt.blocks_on(pm_id) == 0
        assert mux.read(handle, 0, 4) == bytes(4)
        mux.close(handle)

    def test_remove_last_tier_rejected(self):
        stack = build_stack(tiers=["ssd"], enable_cache=False)
        with pytest.raises(InvalidArgument):
            stack.mux.remove_tier(stack.tier_id("ssd"))

    def test_writes_after_removal_use_remaining_tiers(self, stack_nocache):
        stack = stack_nocache
        mux = stack.mux
        mux.write_file("/f", b"x" * 4096)
        mux.remove_tier(stack.tier_id("pm"))
        mux.write_file("/g", b"y" * 4096)
        assert stack.vfs.exists("/tiers/ssd/g")
        assert mux.read_file("/f") == b"x" * 4096

    def test_mismatched_mount_rejected(self, stack_nocache):
        stack = stack_nocache
        with pytest.raises(InvalidArgument):
            stack.mux.add_tier(
                "bogus",
                stack.filesystems["pm"],
                "/tiers/ssd",  # resolves to xfs, not the pm fs
                OPTANE_PMEM_200,
            )

    def test_block_size_mismatch_rejected(self, stack_nocache):
        from repro.devices.ssd import SolidStateDrive
        from repro.fs.xfs import XfsFileSystem

        stack = stack_nocache
        odd_dev = SolidStateDrive(
            "odd", 32 * MIB, stack.clock, block_size=8192
        )
        odd_fs = XfsFileSystem("odd", odd_dev, stack.clock)
        stack.vfs.mount("/tiers/odd", odd_fs)
        with pytest.raises(InvalidArgument):
            stack.mux.add_tier("odd", odd_fs, "/tiers/odd", OPTANE_SSD_P4800X)
