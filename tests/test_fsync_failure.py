"""Fsync-failure semantics: errseq_t once-per-fd reporting and the
per-FS dirty-page disposition when writeback hits a persistent error.

The matrix under test (mirrors the kernels the paper benchmarks):

| FS   | policy  | after a persistent writeback failure              |
|------|---------|---------------------------------------------------|
| ext4 | clean   | pages marked clean + forgotten; data silently gone |
| XFS  | keep    | pages stay dirty, bounded retries, then dropped    |
| NOVA | none    | DAX: errors surface at write(); nothing to lose    |

Plus the Mux-level ledger: a lost cache destage latches EIO on the
collective inode, each fd observes it once, and fsck reports the lost
intervals.
"""

import errno

import pytest

from repro.core.policy import MigrationOrder
from repro.errors import DeviceIoError, TierUnavailable, WritebackError
from repro.stack import build_stack
from repro.tools.fsck import check_native_fs, reconcile_cache
from repro.vfs.interface import OpenFlags

BS = 4096


def fail_data_writes(fs):
    """Latch a persistent media error on every data-region write.

    Journal-region writes (blocks below ``_data_base``) still succeed, so
    metadata commits keep working — only page writeback fails, which is
    the scenario the errseq machinery exists for.
    """
    real = type(fs.device).write_blocks

    def failing(block_no, data):
        if block_no >= fs._data_base:
            raise DeviceIoError(
                f"latched media error at block {block_no}", transient=False
            )
        return real(fs.device, block_no, data)

    fs.device.write_blocks = failing


def heal(fs):
    del fs.device.write_blocks


def dirty_file(fs, path="/f", blocks=2):
    handle = fs.create(path)
    fs.write(handle, 0, b"D" * (blocks * BS))
    return handle


class TestExt4CleanPolicy:
    def test_failing_fsync_reports_and_drops(self, ext4):
        handle = dirty_file(ext4)
        fail_data_writes(ext4)
        with pytest.raises(DeviceIoError):
            ext4.fsync(handle)
        # mark-clean-and-forget: the pages are gone, the loss is on record
        assert ext4.page_cache.dirty_items(handle.ino) == []
        assert ext4.lost_intervals(handle.ino) == [(handle.ino, 0, 2)]
        assert ext4.stats.get("wb_dropped") == 2
        assert ext4.stats.get("wb_errors") == 1

    def test_same_fd_sees_error_only_through_the_failure(self, ext4):
        handle = dirty_file(ext4)
        fail_data_writes(ext4)
        with pytest.raises(DeviceIoError):
            ext4.fsync(handle)
        heal(ext4)
        # the failing fsync itself was this fd's one observation; with the
        # pages forgotten there is nothing left to write and no new error
        ext4.fsync(handle)

    def test_other_preexisting_fd_sees_eio_exactly_once(self, ext4):
        handle = dirty_file(ext4)
        other = ext4.open("/f")
        fail_data_writes(ext4)
        with pytest.raises(DeviceIoError):
            ext4.fsync(handle)
        heal(ext4)
        with pytest.raises(WritebackError) as excinfo:
            ext4.fsync(other)
        assert excinfo.value.errno == errno.EIO
        ext4.fsync(other)  # errseq advanced: seen once, not twice

    def test_fd_opened_after_failure_sees_nothing(self, ext4):
        handle = dirty_file(ext4)
        fail_data_writes(ext4)
        with pytest.raises(DeviceIoError):
            ext4.fsync(handle)
        heal(ext4)
        late = ext4.open("/f")
        ext4.fsync(late)  # sampled the errseq at open: no stale error

    def test_fsck_reports_the_silent_loss(self, ext4):
        handle = dirty_file(ext4)
        fail_data_writes(ext4)
        with pytest.raises(DeviceIoError):
            ext4.fsync(handle)
        heal(ext4)
        problems = check_native_fs(ext4)
        assert any("never persisted" in p for p in problems)

    def test_data_is_really_gone_after_crash(self, ext4):
        handle = dirty_file(ext4)
        fail_data_writes(ext4)
        with pytest.raises(DeviceIoError):
            ext4.fsync(handle)
        heal(ext4)
        ext4.fsync(handle)  # commits the (now dataless) metadata
        ext4.crash()
        ext4.recover()
        handle = ext4.open("/f")
        # the extents exist but the media never saw the bytes
        assert ext4.read(handle, 0, 2 * BS) == bytes(2 * BS)

    def test_o_sync_write_reports_like_fsync(self, ext4):
        handle = dirty_file(ext4, path="/osync")
        ext4.fsync(handle)
        ext4.close(handle)
        handle = ext4.open("/osync", OpenFlags.RDWR | OpenFlags.SYNC)
        fail_data_writes(ext4)
        with pytest.raises(DeviceIoError):
            ext4.write(handle, 0, b"S" * BS)
        heal(ext4)
        ext4.write(handle, BS, b"T" * BS)  # fd already observed the error


class TestXfsKeepPolicy:
    def test_pages_stay_dirty_and_retry(self, xfs):
        handle = dirty_file(xfs)
        fail_data_writes(xfs)
        with pytest.raises(DeviceIoError):
            xfs.fsync(handle)
        # keep-dirty: nothing dropped yet, nothing lost yet
        assert len(xfs.page_cache.dirty_items(handle.ino)) == 2
        assert xfs.lost_intervals() == []
        assert xfs.stats.get("wb_kept_dirty") == 2
        heal(xfs)
        xfs.fsync(handle)  # the retry lands the data
        assert xfs.page_cache.dirty_items(handle.ino) == []
        assert xfs._wb_retries == {}  # success resets the bound
        xfs.crash()
        xfs.recover()
        handle = xfs.open("/f")
        assert xfs.read(handle, 0, 2 * BS) == b"D" * (2 * BS)

    def test_retry_bound_then_drop(self, xfs):
        handle = dirty_file(xfs, blocks=1)
        fail_data_writes(xfs)
        # wb_retry_limit=3 keep-dirty rounds, the 4th failure drops
        for _ in range(xfs.wb_retry_limit + 1):
            with pytest.raises(DeviceIoError):
                xfs.fsync(handle)
        assert xfs.page_cache.dirty_items(handle.ino) == []
        assert xfs.lost_intervals(handle.ino) == [(handle.ino, 0, 1)]
        assert xfs.stats.get("wb_dropped") == 1
        # with the pages gone, fsync succeeds even on the dead device
        xfs.fsync(handle)

    def test_policy_knobs_match_the_matrix(self, nova, xfs, ext4):
        assert ext4.wb_failure_policy == "clean"
        assert xfs.wb_failure_policy == "keep"
        assert xfs.wb_retry_limit == 3
        assert nova.wb_failure_policy == "none"


class TestNovaDaxPath:
    def test_no_writeback_no_loss(self, nova):
        handle = dirty_file(nova)
        nova.fsync(handle)
        # DAX: data persisted at write() return; the ledger never fills
        assert nova.lost_intervals() == []
        assert nova.stats.get("wb_errors") == 0
        nova.crash()
        nova.recover()
        handle = nova.open("/f")
        assert nova.read(handle, 0, 2 * BS) == b"D" * (2 * BS)


def warm_absorbed_file(stack, path="/f", blocks=8):
    """A file demoted to HDD with every block cache-resident and dirty."""
    mux = stack.mux
    handle = mux.create(path)
    mux.write(handle, 0, bytes(blocks * BS))
    mux.engine.migrate_now(
        MigrationOrder(
            handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("hdd")
        )
    )
    mux.read(handle, 0, blocks * BS)
    for fb in range(blocks):
        mux.write(handle, fb * BS, bytes([0x40 + fb]) * BS)
    assert mux.cache.dirty_block_count == blocks
    return handle


class TestMuxErrseq:
    def test_loss_wiring_installed(self):
        wb = build_stack(cache_write_back=True)
        assert wb.mux.cache.on_lost == wb.mux._note_destage_lost

    def test_eviction_loss_latches_eio_once_per_fd(self):
        # a small PM keeps the SCM cache small enough to overflow quickly
        wb = build_stack(cache_write_back=True, capacities={"pm": 2 * 1024 * 1024})
        mux = wb.mux
        handle = warm_absorbed_file(wb)
        other = mux.open("/f")
        # every destage attempt fails: the owner tier is unreachable
        destage_fn = mux.cache.destage_fn

        def refuse(ino, runs):
            raise TierUnavailable("owner tier unreachable")

        mux.cache.destage_fn = refuse
        # stream a cache-sized spill file through: the fills must evict
        # the (oldest, dirty) blocks of /f, and every destage fails
        cap = mux.cache.capacity_blocks
        spill = mux.create("/spill")
        mux.write(spill, 0, bytes(cap * BS))
        mux.engine.migrate_now(
            MigrationOrder(spill.ino, 0, cap, wb.tier_id("pm"), wb.tier_id("hdd"))
        )
        mux.read(spill, 0, cap * BS)
        assert mux.cache.stats.get("destage_lost") >= 1
        assert mux.lost_intervals(handle.ino) != []
        mux.cache.destage_fn = destage_fn
        with pytest.raises(WritebackError) as excinfo:
            mux.fsync(handle)
        assert excinfo.value.errno == errno.EIO
        mux.fsync(handle)  # observed once on this fd
        with pytest.raises(WritebackError):
            mux.fsync(other)  # the other pre-existing fd gets its own EIO
        mux.fsync(other)
        late = mux.open("/f")
        mux.fsync(late)  # opened after the failure: nothing to report

    def test_reconcile_reports_the_lost_intervals(self):
        wb = build_stack(cache_write_back=True)
        mux = wb.mux
        handle = warm_absorbed_file(wb, blocks=2)
        mux.cache._lost.setdefault(handle.ino, []).append((0, 1))
        mux._note_destage_lost(handle.ino, [(0, 1)])
        report = []
        reconcile_cache(mux, report)
        assert any("lost to a failed destage" in line for line in report)
        assert mux.cache.lost_intervals() == []  # reporting drains the ledger

    def test_unlink_clears_the_ledger(self):
        wb = build_stack(cache_write_back=True)
        mux = wb.mux
        handle = warm_absorbed_file(wb, path="/doomed", blocks=2)
        mux._note_destage_lost(handle.ino, [(0, 1)])
        mux.close(handle)
        mux.unlink("/doomed")
        assert mux.lost_intervals() == []


class TestRingCompletionErrno:
    def test_fsync_error_lands_in_cqe_with_errno(self):
        wb = build_stack(cache_write_back=True)
        mux = wb.mux
        handle = warm_absorbed_file(wb, blocks=2)
        mux.fsync(handle)  # destage cleanly first
        mux._note_destage_lost(handle.ino, [(0, 2)])
        ring = mux.open_ring(depth=2)
        done = ring.wait(ring.submit_fsync(handle))
        assert isinstance(done.error, WritebackError)
        assert done.errno == errno.EIO
        # once per fd holds through the ring too
        done = ring.wait(ring.submit_fsync(handle))
        assert done.error is None
        assert done.errno == 0
        mux.close(handle)
