"""Unit tests for the experiment result containers (no experiments run)."""

import pytest

from repro.bench.experiments import (
    Fig3aResult,
    Fig3bResult,
    ReadOverheadResult,
    WriteOverheadResult,
)


class TestFig3aResult:
    def test_speedup(self):
        result = Fig3aResult(
            mux={("pm", "ssd"): 1200.0}, strata={("pm", "ssd"): 600.0}
        )
        assert result.speedup_pm_ssd() == pytest.approx(2.0)

    def test_speedup_missing_pair(self):
        assert Fig3aResult().speedup_pm_ssd() is None

    def test_supported_pair_counts(self):
        result = Fig3aResult(
            mux={(a, b): 1.0 for a in "xy" for b in "xy" if a != b},
            strata={("x", "y"): 1.0},
        )
        assert result.mux_supported_pairs == 2
        assert result.strata_supported_pairs == 1

    def test_rows_mark_ns_cells(self):
        result = Fig3aResult(mux={("pm", "ssd"): 100.0}, strata={})
        rows = result.rows()
        ssd_pm = next(r for r in rows if r.config == "ssd->pm")
        assert "N/S" in ssd_pm.measured


class TestFig3bResult:
    def test_speedup_and_rows(self):
        result = Fig3bResult(
            mux_mb_s={"pm": 200.0, "ssd": 150.0, "hdd": 50.0},
            strata_mb_s={"pm": 100.0, "ssd": 100.0, "hdd": 50.0},
        )
        assert result.speedup("pm") == pytest.approx(2.0)
        rows = result.rows()
        assert len(rows) == 3
        assert "2.00x" in rows[0].measured


class TestOverheadResults:
    def test_read_overhead_pct(self):
        result = ReadOverheadResult(
            native_us={"pm": 2.0, "ssd": 10.0, "hdd": 5000.0},
            mux_us={"pm": 3.0, "ssd": 12.0, "hdd": 5330.0},
        )
        assert result.overhead_pct("pm") == pytest.approx(50.0)
        assert result.overhead_pct("hdd") == pytest.approx(6.6)
        assert len(result.rows()) == 3

    def test_write_overhead_pct(self):
        result = WriteOverheadResult(
            native_mb_s={"pm": 1000.0, "ssd": 500.0, "hdd": 200.0},
            mux_mb_s={"pm": 980.0, "ssd": 495.0, "hdd": 193.0},
        )
        assert result.overhead_pct("pm") == pytest.approx(2.0)
        assert result.overhead_pct("hdd") == pytest.approx(3.5)
        rows = result.rows()
        assert any("-3.5" in r.measured for r in rows)
