"""Remote health propagation through :class:`NetworkFileSystem`.

The hardening contract (ISSUE 10, satellite 2): a remote shard whose own
tiers are degraded must surface in the *local* Mux as a sick tier — the
wire translates remote :class:`TierUnavailable`/:class:`DeviceIoError`
into local :class:`DeviceIoError` so the local HEALTHY→SUSPECT→OFFLINE
machine sees them, instead of leaking raw EIO past it.  Namespace errors
(ENOENT and friends) are answers, not failures, and pass through
untranslated.
"""

import pytest

from repro.core.health import HEALTH_SUSPECT_ERRORS, HealthState
from repro.core.policy import MigrationOrder
from repro.errors import (
    DeviceIoError,
    DeviceOffline,
    FileNotFound,
    TierUnavailable,
)
from repro.fs.nfs import NetworkFileSystem, network_profile
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


@pytest.fixture
def federation():
    """Local 2-tier Mux with a remote machine's Mux as its capacity tier."""
    local = build_stack(
        tiers=["pm", "ssd"],
        capacities={"pm": 16 * MIB, "ssd": 32 * MIB},
        enable_cache=False,
    )
    remote = build_stack(
        tiers=["pm", "hdd"],
        capacities={"pm": 16 * MIB, "hdd": 128 * MIB},
        enable_cache=False,
        clock=local.clock,
    )
    wire = NetworkFileSystem("wire", remote.mux, local.clock, rtt_us=250.0)
    local.vfs.mount("/tiers/remote-mux", wire)
    tier = local.mux.add_tier(
        "remote-mux", wire, "/tiers/remote-mux", network_profile(250.0, 1.25e9)
    )
    local.tier_ids["remote-mux"] = tier.tier_id
    return local, remote, wire


def _sicken_remote(remote) -> None:
    """Fail every tier inside the remote machine: all its I/O now ends
    in TierUnavailable after its own retries."""
    for tier_id in remote.tier_ids.values():
        remote.mux.mark_tier_offline(tier_id)


def _place_on_remote(local, payload: bytes):
    """Write a file locally and migrate its blocks onto the wire tier."""
    mux = local.mux
    handle = mux.create("/doc")
    mux.write(handle, 0, payload)
    mux.fsync(handle)
    blocks = (len(payload) + BS - 1) // BS
    mux.engine.migrate_now(
        MigrationOrder(
            handle.ino, 0, blocks,
            local.tier_id("pm"), local.tier_id("remote-mux"),
        )
    )
    return handle


class TestRemoteCallTranslation:
    """Unit-level: the wire's error translation layer."""

    def test_tier_unavailable_becomes_transient_device_error(self, federation):
        local, remote, wire = federation

        def remote_op():
            raise TierUnavailable("remote pm is offline")

        with pytest.raises(DeviceIoError) as excinfo:
            wire._remote_call(remote_op)
        assert excinfo.value.transient is True
        assert "remote tier unavailable" in str(excinfo.value)
        assert wire.stats.get("remote_errors") == 1

    def test_device_error_is_retagged_preserving_transience(self, federation):
        local, remote, wire = federation
        for transient in (True, False):
            def remote_op():
                raise DeviceIoError("remote scribble", transient=transient)

            with pytest.raises(DeviceIoError) as excinfo:
                wire._remote_call(remote_op)
            assert excinfo.value.transient is transient
            assert "wire" in str(excinfo.value)
        assert wire.stats.get("remote_errors") == 2

    def test_device_offline_stays_offline(self, federation):
        local, remote, wire = federation

        def remote_op():
            raise DeviceOffline("remote drive dropped")

        with pytest.raises(DeviceOffline):
            wire._remote_call(remote_op)
        assert wire.stats.get("remote_offline") == 1

    def test_namespace_errors_pass_through(self, federation):
        local, remote, wire = federation
        with pytest.raises(FileNotFound):
            wire.getattr("/no/such/file")
        assert wire.stats.get("remote_errors") == 0


class TestHealthPropagation:
    """End-to-end: a sick remote shard shows up in the local machine."""

    def test_sick_remote_goes_suspect_locally(self, federation):
        local, remote, wire = federation
        payload = b"R" * (8 * BS)
        handle = _place_on_remote(local, payload)
        _sicken_remote(remote)

        # the local read lands on the wire tier; the remote failure is
        # retried with backoff and surfaces as EIO, not a raw leak
        with pytest.raises(TierUnavailable):
            local.mux.read(handle, 0, BS)

        wire_tier = local.mux.registry.get(local.tier_id("remote-mux"))
        assert wire_tier.health.state is HealthState.SUSPECT
        assert (
            wire_tier.health.consecutive_errors >= HEALTH_SUSPECT_ERRORS
        )
        assert wire.stats.get("remote_errors") >= HEALTH_SUSPECT_ERRORS
        assert local.mux.stats.get("fault_retries") > 0
        local.mux.close(handle)

    def test_suspect_wire_visible_in_tier_states(self, federation):
        local, remote, wire = federation
        handle = _place_on_remote(local, b"S" * (4 * BS))
        _sicken_remote(remote)
        with pytest.raises(TierUnavailable):
            local.mux.read(handle, 0, BS)
        states = {t.name: t for t in local.mux.tier_states()}
        assert states["remote-mux"].health is HealthState.SUSPECT
        assert states["pm"].health is HealthState.HEALTHY
        local.mux.close(handle)

    def test_new_writes_route_around_suspect_wire(self, federation):
        local, remote, wire = federation
        handle = _place_on_remote(local, b"A" * (4 * BS))
        _sicken_remote(remote)
        with pytest.raises(TierUnavailable):
            local.mux.read(handle, 0, BS)
        # fresh writes land on the surviving healthy local tiers
        fresh = local.mux.create("/fresh")
        local.mux.write(fresh, 0, b"B" * BS)
        inode = local.mux.ns.get(fresh.ino)
        assert local.tier_id("remote-mux") not in inode.blt.tiers_used()
        local.mux.close(fresh)
        local.mux.close(handle)

    def test_remote_repair_walks_wire_back_to_healthy(self, federation):
        local, remote, wire = federation
        handle = _place_on_remote(local, b"H" * (4 * BS))
        _sicken_remote(remote)
        with pytest.raises(TierUnavailable):
            local.mux.read(handle, 0, BS)
        wire_tier = local.mux.registry.get(local.tier_id("remote-mux"))
        assert wire_tier.health.state is HealthState.SUSPECT

        # operator repairs the remote machine
        for tier_id in remote.tier_ids.values():
            remote.mux.mark_tier_online(tier_id)
        # consecutive successes promote the wire tier back to HEALTHY
        for _ in range(20):
            assert local.mux.read(handle, 0, BS) == b"H" * BS
        assert wire_tier.health.state is HealthState.HEALTHY
        local.mux.close(handle)

    def test_translation_makes_retry_possible_at_all(self, federation):
        """Without translation the remote TierUnavailable would bypass
        the local retry/health machinery entirely — the regression this
        suite pins down.  The local mux must record retries *and* give
        up with EIO, never crash on an unexpected exception type."""
        local, remote, wire = federation
        handle = _place_on_remote(local, b"X" * (2 * BS))
        _sicken_remote(remote)
        before = local.mux.stats.get("fault_gave_up")
        with pytest.raises(TierUnavailable):
            local.mux.read(handle, 0, BS)
        assert local.mux.stats.get("fault_gave_up") == before + 1
        local.mux.close(handle)
