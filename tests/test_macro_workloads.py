"""Macro workload generators: determinism, correctness, portability."""

import pytest

from repro.bench.macro import ALL_WORKLOADS, fileserver, varmail, webserver
from repro.stack import build_stack

MIB = 1024 * 1024


@pytest.fixture
def small_stack():
    return build_stack(
        capacities={"pm": 16 * MIB, "ssd": 64 * MIB, "hdd": 128 * MIB}
    )


class TestWorkloadMechanics:
    def test_fileserver_runs_on_mux(self, small_stack):
        result = fileserver(
            small_stack.mux, small_stack.clock, files=6, operations=60
        )
        assert result.operations == 60
        assert result.ops_per_sec > 0
        assert sum(result.op_mix.values()) == 60

    def test_fileserver_runs_on_native(self, ext4, clock):
        result = fileserver(ext4, clock, files=4, operations=40)
        assert result.operations == 40

    def test_webserver_hot_set_skew(self, small_stack):
        result = webserver(
            small_stack.mux, small_stack.clock, files=20, operations=100
        )
        assert result.op_mix["page-read"] == 100
        assert result.op_mix["log-append"] == 100

    def test_varmail_fsyncs(self, small_stack):
        before = small_stack.mux.stats.get("fsync")
        result = varmail(small_stack.mux, small_stack.clock, operations=40)
        assert small_stack.mux.stats.get("fsync") > before
        assert result.operations == 40

    def test_determinism(self):
        def run():
            stack = build_stack(
                capacities={"pm": 16 * MIB, "ssd": 64 * MIB, "hdd": 128 * MIB}
            )
            return fileserver(stack.mux, stack.clock, files=5, operations=50).elapsed_s

        assert run() == run()

    def test_all_workloads_registry(self):
        assert set(ALL_WORKLOADS) == {"fileserver", "webserver", "varmail"}

    def test_filesystem_consistent_after_workloads(self, small_stack):
        from repro.tools.fsck import check_mux, check_native_fs

        for workload in ALL_WORKLOADS.values():
            workload(small_stack.mux, small_stack.clock, operations=30)
        small_stack.mux.maintain()
        assert check_mux(small_stack.mux) == []
        for fs in small_stack.filesystems.values():
            assert check_native_fs(fs) == []

    def test_summary_string(self, small_stack):
        result = varmail(small_stack.mux, small_stack.clock, operations=10)
        text = result.summary()
        assert "varmail" in text
        assert "ops/s" in text
