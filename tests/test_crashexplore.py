"""Crash-state explorer: census enumeration, state selection, recovery.

The full sweep runs in CI via ``python -m repro.bench crashexplore
--smoke`` and as the ``crash_matrix`` wallclock workload; these tests
pin the harness mechanics — the census finds every sync-point class,
replay hits the armed point, and explored states verify clean.
"""

from repro.tools.crashexplore import CrashExplorer, _select_states, explore


class TestCensus:
    def test_enumerates_every_sync_point_class(self):
        points = CrashExplorer().census()
        assert len(points) > 50
        labels = {p.label for p in points}
        # the canonical workload must exercise every instrumented class
        assert {"journal_commit", "checkpoint", "destage",
                "migration_commit", "data_write"} <= labels
        assert all(p.index == i for i, p in enumerate(points))

    def test_census_is_deterministic(self):
        assert CrashExplorer().census() == CrashExplorer().census()

    def test_multi_block_writes_carry_torn_potential(self):
        points = CrashExplorer().census()
        assert any(p.blocks > 1 for p in points)


class TestSelection:
    def test_full_mode_visits_every_point(self):
        points = CrashExplorer().census()
        states = _select_states(points, smoke=False)
        cut = [p for p, v in states if v == "cut"]
        assert len(cut) == len(points)
        torn = [p for p, v in states if v == "torn"]
        assert all(p.blocks > 1 for p in torn)

    def test_smoke_mode_covers_every_label(self):
        points = CrashExplorer().census()
        states = _select_states(points, smoke=True)
        assert len(states) < len(points)
        assert {p.label for p, _ in states} == {p.label for p in points}
        assert any(v == "torn" for _, v in states)


class TestExplore:
    def test_armed_replay_hits_the_target(self):
        explorer = CrashExplorer()
        points = explorer.census()
        result = explorer.explore_state(points[0], "cut")
        assert result.ok, result.problems

    def test_torn_variant_recovers(self):
        explorer = CrashExplorer()
        points = explorer.census()
        torn = next(p for p in points if p.blocks > 1)
        result = explorer.explore_state(torn, "torn")
        assert result.ok, result.problems

    def test_smoke_sweep_recovers_cleanly(self):
        report = explore(smoke=True)
        assert report["failures"] == []
        assert report["states_explored"] >= 10
        assert report["sync_points"] > 50
        # healthy devices: crashes lose only unsynced data, never report
        # destage losses
        assert report["lost_intervals_reported"] == 0
