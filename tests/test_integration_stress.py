"""Capstone integration test: a day in the life of the stack.

Mixed application workloads, background policy maintenance, asynchronous
migrations racing foreground writes, a crash in the middle, recovery —
then full fsck of every layer and content verification of files whose
durability was guaranteed.
"""

import pytest

from repro.bench.macro import fileserver, varmail, webserver
from repro.core.policies import LruTieringPolicy
from repro.sim.rng import DeterministicRng
from repro.stack import build_stack
from repro.tools.fsck import check_mux, check_native_fs
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024
BS = 4096


@pytest.fixture
def world():
    return build_stack(
        capacities={"pm": 24 * MIB, "ssd": 64 * MIB, "hdd": 256 * MIB},
        policy=LruTieringPolicy(high_watermark=0.7, low_watermark=0.5),
    )


class TestDayInTheLife:
    def test_full_lifecycle(self, world):
        mux = world.mux
        rng = DeterministicRng(99)

        # --- phase 1: applications do their thing --------------------------
        fileserver(mux, world.clock, files=12, operations=120, seed=1)
        webserver(mux, world.clock, files=40, operations=200, seed=2)
        varmail(mux, world.clock, operations=80, seed=3)
        mux.maintain()

        # --- phase 2: a durable database file + async migration races ------
        db = mux.open("/critical.db", OpenFlags.RDWR | OpenFlags.CREAT)
        golden = bytearray(4 * MIB)
        for i in range(0, 4 * MIB, 64 * 1024):
            chunk = bytes([rng.randint(1, 255)]) * (64 * 1024)
            mux.write(db, i, chunk)
            golden[i : i + 64 * 1024] = chunk
        mux.fsync(db)

        submitted = mux.maintain_async()
        writes = 0
        while mux.engine.tick():
            offset = rng.randint(0, 4 * MIB - 256)
            patch = bytes([rng.randint(1, 255)]) * 256
            mux.write(db, offset, patch)
            golden[offset : offset + 256] = patch
            writes += 1
        mux.fsync(db)

        # --- phase 3: consistency audit of every layer -----------------------
        assert check_mux(mux) == []
        for fs in world.filesystems.values():
            assert check_native_fs(fs) == []
        assert mux.read(db, 0, 4 * MIB) == bytes(golden)

        # --- phase 4: power loss + recovery -----------------------------------
        mux.crash()
        mux.recover()
        db2 = mux.open("/critical.db", OpenFlags.RDONLY)
        assert mux.read(db2, 0, 4 * MIB) == bytes(golden)
        assert check_mux(mux, deep=False) == []
        for fs in world.filesystems.values():
            assert check_native_fs(fs) == []

        # --- phase 5: life goes on ---------------------------------------------
        varmail(mux, world.clock, operations=40, seed=4)
        mux.maintain()
        assert check_mux(mux) == []
        mux.close(db2)

    def test_maintain_async_runs_policy_plan(self, world):
        mux = world.mux
        # overfill the pm tier so the LRU policy wants demotions
        handle = mux.create("/ballast")
        for i in range(20):
            mux.write(handle, i * MIB, bytes(MIB))
        submitted = mux.maintain_async()
        assert submitted > 0
        mux.engine.drain()
        pm_fs = world.filesystems["pm"]
        assert pm_fs.statfs().utilization < 0.75  # back under the watermark
        assert mux.read(handle, 0, 16) == bytes(16)
        assert check_mux(mux) == []
        mux.close(handle)

    def test_report_after_stress(self, world):
        mux = world.mux
        fileserver(mux, world.clock, files=6, operations=40, seed=5)
        mux.maintain()
        text = mux.report()
        assert "tiers:" in text
        assert "migrations:" in text
