"""Pressure-aware placement: spill, hysteresis, health, demotion, pacing."""

from dataclasses import replace

import pytest

from repro.core.health import HealthState
from repro.core.policies import (
    HotColdPressurePolicy,
    LruTieringPolicy,
    PressureAwarePolicy,
    TpfsPressurePolicy,
)
from repro.core.policy import (
    FileView,
    PlacementRequest,
    TierState,
    make_policy,
)
from repro.core.pressure import TierPressure
from repro.devices.profile import OPTANE_SSD_P4800X, DeviceKind
from repro.stack import build_stack

KIB = 1024
MIB = 1024 * KIB


def _tier(
    tier_id: int,
    rank: int,
    load: float = 0.0,
    health: HealthState = HealthState.HEALTHY,
    free: int = 900 * MIB,
    total: int = 1024 * MIB,
) -> TierState:
    return TierState(
        tier_id=tier_id,
        name=f"t{tier_id}",
        rank=rank,
        kind=DeviceKind.SOLID_STATE,
        free_bytes=free,
        total_bytes=total,
        health=health,
        pressure=TierPressure(queued=load, backlog=load),
    )


def _req(length: int = 4 * KIB, ino: int = 1, sync: bool = False) -> PlacementRequest:
    return PlacementRequest(
        path="/f",
        ino=ino,
        offset=0,
        length=length,
        file_size=length,
        is_append=True,
        synchronous=sync,
    )


class TestSpill:
    def test_cool_base_tier_keeps_the_write(self):
        pol = PressureAwarePolicy()
        tiers = [_tier(0, 0), _tier(1, 1), _tier(2, 2)]
        assert pol.place_write(_req(4 * KIB), tiers) == 0
        assert pol.pressure_spills == 0

    def test_saturated_base_spills_uphill(self):
        pol = PressureAwarePolicy()
        # avg write size lands at rank 1; its channels are saturated
        tiers = [_tier(0, 0), _tier(1, 1, load=2.0), _tier(2, 2)]
        dst = pol.place_write(_req(512 * KIB), tiers)
        assert dst == 0  # spilled to the cool faster tier, not downhill
        assert pol.pressure_spills == 1

    def test_no_faster_tier_eats_the_queue(self):
        # saturation at the fastest tier: spilling downhill would trade a
        # transient queue for a permanently slow placement, so stay put
        pol = PressureAwarePolicy()
        tiers = [_tier(0, 0, load=2.0), _tier(1, 1), _tier(2, 2)]
        assert pol.place_write(_req(4 * KIB), tiers) == 0
        assert pol.pressure_spills == 0

    def test_tpfs_pressure_variant_spills(self):
        pol = TpfsPressurePolicy()
        tiers = [_tier(0, 0), _tier(1, 1, load=2.0), _tier(2, 2)]
        dst = pol.place_write(_req(512 * KIB), tiers)
        assert dst == 0
        assert pol.pressure_spills == 1

    def test_hotcold_pressure_variant_defers_hot_promotions(self):
        # hotcold-pressure's router base is always the fastest roomy tier,
        # so its pressure behaviour shows in planning: promotion orders
        # toward a loaded fastest tier are dropped, not forced through
        pol = HotColdPressurePolicy()
        for _ in range(8):
            pol.on_access(1, 0, 1, 1, "read", 0.0)
        hot_fastest = [_tier(0, 0, load=2.0), _tier(1, 1), _tier(2, 2)]
        assert pol.plan_migrations(hot_fastest, [_view(1, tier=1)]) == []
        assert pol.deferred_orders == 1

    def test_registry_names(self):
        for name, cls in (
            ("pressure", PressureAwarePolicy),
            ("tpfs-pressure", TpfsPressurePolicy),
            ("hotcold-pressure", HotColdPressurePolicy),
        ):
            assert isinstance(make_policy(name), cls)


class TestHysteresis:
    def test_avoided_until_resume_threshold(self):
        pol = PressureAwarePolicy(spill_load=0.75, resume_load=0.3)
        loaded = [_tier(0, 0), _tier(1, 1, load=0.8), _tier(2, 2)]
        assert pol.place_write(_req(512 * KIB), loaded) == 0

        # load decays into the hysteresis band: still avoided, no flap
        band = [_tier(0, 0), _tier(1, 1, load=0.5), _tier(2, 2)]
        assert pol.place_write(_req(512 * KIB), band) == 0

        # only below resume_load does placement return to the base tier
        cool = [_tier(0, 0), _tier(1, 1, load=0.1), _tier(2, 2)]
        assert pol.place_write(_req(512 * KIB), cool) == 1

    def test_resume_must_be_below_spill(self):
        from repro.errors import PolicyError

        with pytest.raises(PolicyError):
            PressureAwarePolicy(spill_load=0.5, resume_load=0.5)


class TestHealthRouting:
    def test_suspect_base_moves_the_write(self):
        pol = PressureAwarePolicy()
        tiers = [
            _tier(0, 0, health=HealthState.SUSPECT),
            _tier(1, 1),
            _tier(2, 2),
        ]
        assert pol.place_write(_req(4 * KIB), tiers) == 1

    def test_suspect_preferred_over_offline(self):
        # all fast tiers degraded: a SUSPECT tier still beats OFFLINE,
        # which must never receive a write
        pol = PressureAwarePolicy()
        tiers = [
            _tier(0, 0, health=HealthState.OFFLINE),
            _tier(1, 1, health=HealthState.SUSPECT),
            _tier(2, 2, health=HealthState.SUSPECT),
        ]
        assert pol.place_write(_req(4 * KIB), tiers) == 1


def _view(ino: int, tier: int, blocks: int = 64) -> FileView:
    return FileView(
        ino=ino,
        path=f"/f{ino}",
        size=blocks * 4096,
        blocks_by_tier={tier: blocks},
        runs=[(0, blocks, tier)],
    )


class TestPlanning:
    def test_backlogged_tier_demotes_cold_files(self):
        pol = PressureAwarePolicy(demote_load=1.5)
        tiers = [_tier(0, 0), _tier(1, 1, load=2.0), _tier(2, 2)]
        orders = pol.plan_migrations(tiers, [_view(1, tier=1)])
        assert orders
        assert all(o.reason == "pressure-demote" for o in orders)
        assert all(o.src_tier == 1 and o.dst_tier != 1 for o in orders)

    def test_warm_files_stay_on_backlogged_tier(self):
        # warm = above the cold threshold (no demotion: moving warm data
        # off a busy tier just moves the heat) but below the hot
        # threshold (no promotion either)
        pol = PressureAwarePolicy()
        for _ in range(2):
            pol.on_access(1, 0, 1, 1, "read", 0.0)
        tiers = [_tier(0, 0), _tier(1, 1, load=2.0), _tier(2, 2)]
        orders = pol.plan_migrations(tiers, [_view(1, tier=1)])
        assert orders == []

    def test_watermark_demotion_ignores_heat(self):
        # a nearly-full fast tier sheds even warm files: absorption of
        # the next burst is worth more than any one file's placement
        pol = PressureAwarePolicy(demote_util=0.85)
        for _ in range(8):
            pol.on_access(1, 0, 1, 0, "read", 0.0)
        full = _tier(0, 0, free=64 * MIB, total=1024 * MIB)
        tiers = [full, _tier(1, 1), _tier(2, 2)]
        orders = pol.plan_migrations(tiers, [_view(1, tier=0)])
        assert orders
        assert orders[0].src_tier == 0
        assert orders[0].reason == "pressure-demote"

    def test_promotion_deferred_while_fastest_is_hot(self):
        pol = PressureAwarePolicy()
        for _ in range(8):
            pol.on_access(1, 0, 1, 1, "read", 0.0)
        cool = [_tier(0, 0), _tier(1, 1), _tier(2, 2)]
        hot = [_tier(0, 0, load=2.0), _tier(1, 1), _tier(2, 2)]
        deferred_before = pol.deferred_orders
        assert pol.plan_migrations(hot, [_view(1, tier=1)]) == []
        assert pol.deferred_orders > deferred_before
        orders = pol.plan_migrations(cool, [_view(1, tier=1)])
        assert orders and orders[0].reason == "pressure-promote"

    def test_promotion_respects_headroom_cap(self):
        pol = PressureAwarePolicy(promote_util=0.5)
        for _ in range(8):
            pol.on_access(1, 0, 1, 1, "read", 0.0)
        crowded = _tier(0, 0, free=400 * MIB, total=1024 * MIB)
        tiers = [crowded, _tier(1, 1), _tier(2, 2)]
        assert pol.plan_migrations(tiers, [_view(1, tier=1)]) == []

    def test_promotion_rationed_per_plan(self):
        pol = PressureAwarePolicy(promote_files_per_plan=2)
        views = [_view(i, tier=1) for i in range(1, 6)]
        for v in views:
            for _ in range(8):
                pol.on_access(v.ino, 0, 1, 1, "read", 0.0)
        tiers = [_tier(0, 0), _tier(1, 1), _tier(2, 2)]
        orders = pol.plan_migrations(tiers, views)
        assert len({o.ino for o in orders}) == 2


class TestIntegrationSpill:
    def test_saturated_ssd_timeline_triggers_spill(self):
        """End-to-end: replaying the canonical bursty trace, the fsynced
        write bursts saturate the small-buffer SSD's channels and the
        sampled load pushes subsequent burst writes uphill to PM."""
        from repro.bench.tracereplay import load_canonical, replay_trace

        trace = load_canonical("bursty")
        stack = build_stack(
            policy="pressure",
            enable_cache=False,
            profiles={
                "ssd": replace(OPTANE_SSD_P4800X, write_buffer_bytes=256 * KIB)
            },
            readahead_background=True,
            pressure_interval_ns=10_000,
        )
        result = replay_trace(
            stack, trace, ring_depth=32, maintain_every=256, population_tier="ssd"
        )
        assert result.errors == 0
        assert stack.mux.policy.pressure_spills > 0
        # the policy also migrated (demotions/promotions), not just spilled
        assert result.migrations_submitted > 0


class TestForgetRegression:
    """Policy.forget must fire on unlink AND rename-over for every
    stateful policy — stale per-ino heat/history must not pin a dead
    inode's placement decisions (ino numbers are never reused)."""

    def _state_keys(self, pol):
        keys = set()
        for attr in ("_heat", "_history"):
            keys |= set(getattr(pol, attr, {}))
        keys |= {k[0] for k in getattr(pol, "_recency", {})}
        return keys

    @pytest.mark.parametrize("name", ["lru", "tpfs", "hotcold", "pressure"])
    def test_unlink_drops_policy_state(self, name):
        stack = build_stack(policy=name)
        mux = stack.mux
        mux.mkdir("/d")
        handle = mux.create("/d/a")
        mux.write(handle, 0, b"z" * 8192)
        mux.read(handle, 0, 8192)
        mux.close(handle)
        ino = handle.ino
        assert ino in self._state_keys(mux.policy)
        mux.unlink("/d/a")
        assert ino not in self._state_keys(mux.policy)

    @pytest.mark.parametrize("name", ["lru", "tpfs", "hotcold", "pressure"])
    def test_rename_over_drops_replaced_state(self, name):
        stack = build_stack(policy=name)
        mux = stack.mux
        mux.mkdir("/d")
        victim = mux.create("/d/victim")
        mux.write(victim, 0, b"z" * 8192)
        mux.read(victim, 0, 8192)
        mux.close(victim)
        other = mux.create("/d/other")
        mux.write(other, 0, b"w" * 4096)
        mux.close(other)
        assert victim.ino in self._state_keys(mux.policy)
        mux.rename("/d/other", "/d/victim")
        assert victim.ino not in self._state_keys(mux.policy)
        # the surviving file's state is untouched
        if isinstance(mux.policy, LruTieringPolicy):
            assert other.ino in self._state_keys(mux.policy)


class TestEnginePacing:
    def test_async_copy_bounds_bookahead(self):
        """A background copy must not book device time far past the
        global clock — foreground ops would knee-inflate against that
        phantom backlog.  Ticking with a static clock forces the bound
        to engage (counted stalls), yet the copy still completes."""
        from repro.core.policy import MigrationOrder

        stack = build_stack(enable_cache=False)
        mux = stack.mux
        mux.mkdir("/d")
        handle = mux.create("/d/big")
        mux.write(handle, 0, b"q" * (4 * MIB))
        mux.close(handle)
        inode = mux.inode_by_ino(handle.ino)
        src = next(iter(inode.blt.runs(0, inode.blt.end_block())))[2]
        dst = next(t for t in stack.tier_ids.values() if t != src)
        blocks = (4 * MIB) // mux.block_size
        task = mux.engine.submit(
            MigrationOrder(handle.ino, 0, blocks, src, dst, reason="test")
        )
        for _ in range(100_000):
            if task.done:
                break
            mux.engine.tick()
        assert task.done
        assert mux.engine.stats.get("bookahead_stalls") > 0
        assert mux.inode_by_ino(handle.ino).blt.blocks_on(dst) == blocks
