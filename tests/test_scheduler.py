"""I/O scheduler: sub-request ordering and merging."""

import pytest

from repro.core.policy import MigrationOrder
from repro.core.scheduler import IoScheduler, SubRequest
from repro.devices.profile import DeviceKind

KINDS = {
    0: DeviceKind.PERSISTENT_MEMORY,
    1: DeviceKind.SOLID_STATE,
    2: DeviceKind.HARD_DISK,
}


def req(tier, offset, length, buffer_offset):
    return SubRequest(tier, offset, length, buffer_offset)


class TestPlan:
    def test_disabled_is_fifo(self):
        scheduler = IoScheduler(enabled=False)
        requests = [req(2, 100, 10, 0), req(0, 0, 10, 10)]
        assert scheduler.plan(requests, KINDS) == requests

    def test_serial_dispatches_fast_tiers_first(self):
        # serial model: fast results return before slow devices are touched
        scheduler = IoScheduler(parallel=False)
        plan = scheduler.plan([req(2, 0, 10, 0), req(0, 0, 10, 10)], KINDS)
        assert [r.tier_id for r in plan] == [0, 2]

    def test_parallel_dispatches_bottleneck_first(self):
        # parallel model: start the slowest (critical-path) device earliest
        scheduler = IoScheduler(parallel=True)
        plan = scheduler.plan([req(0, 0, 10, 10), req(2, 0, 10, 0)], KINDS)
        assert [r.tier_id for r in plan] == [2, 0]

    def test_elevator_order_within_tier(self):
        scheduler = IoScheduler()
        plan = scheduler.plan(
            [req(2, 9000, 10, 0), req(2, 100, 10, 10), req(2, 5000, 10, 20)], KINDS
        )
        assert [r.offset for r in plan] == [100, 5000, 9000]

    def test_adjacent_spans_merged(self):
        scheduler = IoScheduler()
        plan = scheduler.plan(
            [req(1, 0, 100, 0), req(1, 100, 50, 100)], KINDS
        )
        assert len(plan) == 1
        assert plan[0].length == 150
        assert scheduler.merges == 1

    def test_non_adjacent_buffer_not_merged(self):
        scheduler = IoScheduler()
        # file-adjacent but the buffer destinations are swapped
        plan = scheduler.plan(
            [req(1, 100, 50, 0), req(1, 0, 100, 50)], KINDS
        )
        assert len(plan) == 2

    def test_file_adjacent_buffer_gap_not_merged(self):
        scheduler = IoScheduler()
        # file-adjacent, buffer destinations in order but with a hole
        # between them (e.g. a readv with separate iovecs): a single
        # merged device span would overrun the first iovec
        plan = scheduler.plan(
            [req(1, 0, 100, 0), req(1, 100, 50, 132)], KINDS
        )
        assert len(plan) == 2
        assert scheduler.merges == 0

    def test_elevator_order_across_mixed_tier_kinds(self):
        # the elevator runs per tier: each tier's spans come out in
        # ascending file offset, regardless of arrival order or how the
        # tiers interleave in the input
        scheduler = IoScheduler(parallel=True)
        plan = scheduler.plan(
            [
                req(2, 9000, 10, 0),
                req(0, 700, 10, 10),
                req(2, 100, 10, 20),
                req(1, 5000, 10, 30),
                req(0, 40, 10, 40),
                req(1, 300, 10, 50),
            ],
            KINDS,
        )
        # parallel: slowest kind first, elevator order within each tier
        assert [(r.tier_id, r.offset) for r in plan] == [
            (2, 100), (2, 9000), (1, 300), (1, 5000), (0, 40), (0, 700),
        ]

    def test_different_tiers_not_merged(self):
        scheduler = IoScheduler()
        plan = scheduler.plan([req(0, 0, 10, 0), req(1, 10, 10, 10)], KINDS)
        assert len(plan) == 2

    def test_single_request_untouched(self):
        scheduler = IoScheduler()
        only = [req(1, 5, 10, 0)]
        assert scheduler.plan(only, KINDS) == only

    def test_merge_does_not_mutate_input(self):
        scheduler = IoScheduler()
        a = req(1, 0, 100, 0)
        b = req(1, 100, 50, 100)
        scheduler.plan([a, b], KINDS)
        assert a.length == 100  # inputs untouched; plan used copies

    def test_dispatch_counter(self):
        scheduler = IoScheduler()
        scheduler.plan([req(0, 0, 1, 0), req(1, 0, 1, 1)], KINDS)
        assert scheduler.dispatches == 2


class TestSchedulerThroughMux:
    def test_scheduler_reduces_split_read_time(self):
        """A fragmented cross-tier read is faster with the scheduler on."""
        from repro.stack import build_stack

        def run(enabled):
            stack = build_stack(
                enable_cache=False, scheduler=IoScheduler(enabled=enabled)
            )
            mux = stack.mux
            handle = mux.create("/frag")
            blocks = 64
            mux.write(handle, 0, bytes(blocks * 4096))
            # scatter alternating blocks to the hdd tier -> many sub-requests
            for fb in range(0, blocks, 2):
                mux.engine.migrate_now(
                    MigrationOrder(
                        handle.ino, fb, 1, stack.tier_id("pm"), stack.tier_id("hdd")
                    )
                )
            # drop the hdd page cache so reads really seek
            stack.filesystems["hdd"].page_cache.drop_clean()
            t0 = stack.clock.now_ns
            mux.read(handle, 0, blocks * 4096)
            return stack.clock.now_ns - t0

        unscheduled = run(False)
        scheduled = run(True)
        assert scheduled <= unscheduled
