"""Dentry cache correctness: hits stay coherent through every namespace
mutation (create/unlink/rename/rmdir), tier removal and VFS mount-table
changes — a stale entry must never change an operation's outcome."""

import pytest

from repro.core.dcache import DentryCache
from repro.errors import FileNotFound
from repro.vfs.interface import OpenFlags


class TestDentryCacheUnit:
    def test_positive_and_negative_entries(self):
        dc = DentryCache()
        assert dc.get("/a") is None
        dc.put("/a", 7)
        assert dc.get("/a") == 7
        dc.put_negative("/b")
        assert DentryCache.is_negative(dc.get("/b"))
        assert not DentryCache.is_negative(dc.get("/a"))
        assert dc.hits == 3 and dc.misses == 1

    def test_invalidate_single(self):
        dc = DentryCache()
        dc.put("/a", 1)
        dc.invalidate("/a")
        assert dc.get("/a") is None
        dc.invalidate("/never-cached")  # no-op, no error

    def test_invalidate_prefix_spares_siblings(self):
        dc = DentryCache()
        dc.put("/dir", 1)
        dc.put("/dir/x", 2)
        dc.put_negative("/dir/sub/gone")
        dc.put("/dirx", 3)  # shares the string prefix but is a sibling
        dc.invalidate_prefix("/dir")
        assert dc.get("/dir") is None
        assert dc.get("/dir/x") is None
        assert dc.get("/dir/sub/gone") is None
        assert dc.get("/dirx") == 3

    def test_capacity_bounded_fifo(self):
        dc = DentryCache(capacity=4)
        for i in range(6):
            dc.put(f"/f{i}", i)
        assert len(dc) == 4
        assert dc.get("/f0") is None  # oldest evicted
        assert dc.get("/f5") == 5

    def test_overwrite_does_not_evict(self):
        dc = DentryCache(capacity=2)
        dc.put("/a", 1)
        dc.put("/b", 2)
        dc.put("/a", 10)  # update in place
        assert len(dc) == 2
        assert dc.get("/a") == 10
        assert dc.get("/b") == 2

    def test_clear(self):
        dc = DentryCache()
        dc.put("/a", 1)
        dc.clear()
        assert len(dc) == 0


class TestMuxResolutionCoherence:
    def test_repeat_lookup_hits_cache(self, stack):
        mux = stack.mux
        handle = mux.create("/f")
        mux.close(handle)
        mux.getattr("/f")
        hits_before = mux.ns.dcache.hits
        st = mux.getattr("/f")
        assert mux.ns.dcache.hits > hits_before
        assert st.ino == handle.ino

    def test_negative_entry_revalidated_on_create(self, stack):
        mux = stack.mux
        assert not mux.exists("/ghost")
        assert not mux.exists("/ghost")  # second probe served negative
        handle = mux.create("/ghost")
        # creation must kill the negative entry immediately
        assert mux.exists("/ghost")
        assert mux.getattr("/ghost").ino == handle.ino
        mux.close(handle)

    def test_unlink_invalidates(self, stack):
        mux = stack.mux
        handle = mux.create("/victim")
        mux.close(handle)
        mux.getattr("/victim")  # warm the cache
        mux.unlink("/victim")
        assert not mux.exists("/victim")
        with pytest.raises(FileNotFound):
            mux.getattr("/victim")

    def test_rename_file_invalidates_both_paths(self, stack):
        mux = stack.mux
        handle = mux.create("/old")
        mux.write(handle, 0, b"payload")
        mux.close(handle)
        mux.getattr("/old")  # cache the source
        assert not mux.exists("/new")  # cache a negative for the target
        mux.rename("/old", "/new")
        assert not mux.exists("/old")
        st = mux.getattr("/new")
        assert st.ino == handle.ino
        h2 = mux.open("/new", OpenFlags.RDONLY)
        assert mux.read(h2, 0, 7) == b"payload"
        mux.close(h2)

    def test_rename_directory_moves_children(self, stack):
        mux = stack.mux
        mux.mkdir("/srcdir")
        handle = mux.create("/srcdir/child")
        mux.close(handle)
        mux.getattr("/srcdir/child")  # cache a path under the dir
        mux.rename("/srcdir", "/dstdir")
        with pytest.raises(FileNotFound):
            mux.getattr("/srcdir/child")
        assert mux.getattr("/dstdir/child").ino == handle.ino

    def test_rmdir_drops_negative_entries_beneath(self, stack):
        mux = stack.mux
        mux.mkdir("/d")
        assert not mux.exists("/d/x")  # negative entry under /d
        mux.rmdir("/d")
        # rebuild the same name via a directory rename; the old negative
        # entry must not shadow the now-existing file
        mux.mkdir("/e")
        handle = mux.create("/e/x")
        mux.close(handle)
        mux.rename("/e", "/d")
        assert mux.exists("/d/x")
        assert mux.getattr("/d/x").ino == handle.ino

    def test_unnormalized_paths_share_entries(self, stack):
        mux = stack.mux
        handle = mux.create("/a")
        mux.close(handle)
        assert mux.getattr("//a/").ino == handle.ino
        mux.unlink("/a//")
        assert not mux.exists("/a")

    def test_remove_tier_clears_cache(self, stack):
        mux = stack.mux
        handle = mux.create("/kept")
        mux.write(handle, 0, b"z" * 4096)
        mux.close(handle)
        mux.getattr("/kept")
        assert len(mux.ns.dcache) > 0
        mux.remove_tier(stack.tier_id("hdd"))
        assert len(mux.ns.dcache) == 0
        # resolution still works and repopulates
        assert mux.getattr("/kept").ino == handle.ino
        assert len(mux.ns.dcache) > 0


class TestVfsMountMemoCoherence:
    def test_unmount_invalidates_resolve_memo(self, stack):
        vfs, mux = stack.vfs, stack.mux
        handle = mux.create("/f")
        mux.close(handle)
        assert vfs.getattr("/mux/f").ino == handle.ino  # memoize the route
        vfs.unmount("/mux")
        with pytest.raises(FileNotFound):
            vfs.getattr("/mux/f")
        vfs.mount("/mux", mux)
        assert vfs.getattr("/mux/f").ino == handle.ino

    def test_longest_prefix_wins_after_nested_mount(self, stack):
        vfs = stack.vfs
        # /tiers/pm is mounted under the /tiers hierarchy; resolution must
        # dispatch to the deepest mount even with the memo warm
        pm = stack.filesystems["pm"]
        handle = pm.create("/direct")
        pm.close(handle)
        assert vfs.exists("/tiers/pm/direct")
        assert vfs.getattr("/tiers/pm/direct").ino == handle.ino
