"""MuxNamespace unit tests (direct, without a full stack)."""

import pytest

from repro.core.blt import ExtentBlt
from repro.core.metadata import CollectiveInode, MuxNamespace
from repro.errors import (
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    InvalidArgument,
    IsADirectory,
    NotADirectory,
)
from repro.vfs.stat import FileType


@pytest.fixture
def ns():
    return MuxNamespace(now=0.0)


class TestResolution:
    def test_root(self, ns):
        assert ns.resolve("/") is ns.root

    def test_missing(self, ns):
        with pytest.raises(FileNotFound):
            ns.resolve("/ghost")

    def test_nested(self, ns):
        ns.mkdir("/a", 1.0, 0o755)
        inode = ns.create_file("/a/f", 2.0, 0o644, initial_tier=0)
        assert ns.resolve("/a/f") is inode

    def test_file_as_directory(self, ns):
        ns.create_file("/f", 1.0, 0o644, initial_tier=0)
        with pytest.raises(NotADirectory):
            ns.resolve("/f/below")

    def test_get_by_ino(self, ns):
        inode = ns.create_file("/f", 1.0, 0o644, initial_tier=0)
        assert ns.get(inode.ino) is inode
        with pytest.raises(FileNotFound):
            ns.get(424242)


class TestMutation:
    def test_create_updates_parent_times(self, ns):
        ns.create_file("/f", 5.0, 0o644, initial_tier=0)
        assert ns.root.mtime == 5.0

    def test_duplicate(self, ns):
        ns.create_file("/f", 1.0, 0o644, initial_tier=0)
        with pytest.raises(FileExists):
            ns.create_file("/f", 2.0, 0o644, initial_tier=0)

    def test_mkdir_nlink(self, ns):
        base_nlink = ns.root.nlink
        ns.mkdir("/d", 1.0, 0o755)
        assert ns.root.nlink == base_nlink + 1
        ns.rmdir("/d", 2.0)
        assert ns.root.nlink == base_nlink

    def test_unlink_frees_inode(self, ns):
        inode = ns.create_file("/f", 1.0, 0o644, initial_tier=0)
        ns.unlink("/f", 2.0)
        with pytest.raises(FileNotFound):
            ns.get(inode.ino)

    def test_unlink_dir_rejected(self, ns):
        ns.mkdir("/d", 1.0, 0o755)
        with pytest.raises(IsADirectory):
            ns.unlink("/d", 2.0)

    def test_rmdir_nonempty(self, ns):
        ns.mkdir("/d", 1.0, 0o755)
        ns.create_file("/d/f", 2.0, 0o644, initial_tier=0)
        with pytest.raises(DirectoryNotEmpty):
            ns.rmdir("/d", 3.0)

    def test_root_operations_rejected(self, ns):
        with pytest.raises(InvalidArgument):
            ns.unlink("/", 1.0)
        with pytest.raises(InvalidArgument):
            ns.mkdir("/", 1.0, 0o755)

    def test_rename_into_self_rejected(self, ns):
        ns.mkdir("/d", 1.0, 0o755)
        with pytest.raises(InvalidArgument):
            ns.rename("/d", "/d/sub", 2.0)

    def test_rename_same_path_is_noop(self, ns):
        inode = ns.create_file("/f", 1.0, 0o644, initial_tier=0)
        moved, replaced = ns.rename("/f", "/f", 2.0)
        assert moved is inode
        assert replaced is None

    def test_custom_blt_injected(self, ns):
        blt = ExtentBlt()
        inode = ns.create_file("/f", 1.0, 0o644, initial_tier=0, blt=blt)
        assert inode.blt is blt


class TestIntrospection:
    def test_readdir_sorted(self, ns):
        ns.create_file("/b", 1.0, 0o644, initial_tier=0)
        ns.create_file("/a", 1.0, 0o644, initial_tier=0)
        assert ns.readdir("/") == ["a", "b"]

    def test_files_iterates_regular_only(self, ns):
        ns.mkdir("/d", 1.0, 0o755)
        ns.create_file("/f", 1.0, 0o644, initial_tier=0)
        files = list(ns.files())
        assert len(files) == 1
        assert files[0].file_type is FileType.REGULAR

    def test_path_of(self, ns):
        ns.mkdir("/a", 1.0, 0o755)
        inode = ns.create_file("/a/deep", 2.0, 0o644, initial_tier=0)
        assert ns.path_of(inode) == "/a/deep"
        assert ns.path_of(ns.root) == "/"

    def test_len_counts_inodes(self, ns):
        assert len(ns) == 1  # root
        ns.mkdir("/d", 1.0, 0o755)
        ns.create_file("/f", 1.0, 0o644, initial_tier=0)
        assert len(ns) == 3


class TestCollectiveInodeUnit:
    def test_stat_extra_fields(self):
        inode = CollectiveInode(7, FileType.REGULAR, 1.0, 0o644, initial_tier=2)
        stat = inode.stat(blocks=16)
        assert stat.ino == 7
        assert stat.blocks == 16
        assert stat.extra["version"] == 0
        assert stat.extra["affinity"]["size"] == 2

    def test_occ_state_defaults(self):
        inode = CollectiveInode(1, FileType.REGULAR, 0.0, 0o644)
        assert inode.version == 0
        assert not inode.migration_active
        assert not inode.locked
        assert inode.dirty_during_migration == set()
