"""Benchmark harness: workloads are deterministic and systems comparable."""

import pytest

from repro.bench import workloads
from repro.bench.harness import VfsView, build_pinned_mux, build_strata, format_rows, ResultRow
from repro.stack import build_stack

MIB = 1024 * 1024


class TestWorkloads:
    def test_make_file(self):
        stack = build_stack(enable_cache=False)
        handle = workloads.make_file(stack.mux, stack.clock, "/f", 2 * MIB)
        assert stack.mux.getattr("/f").size == 2 * MIB
        stack.mux.close(handle)

    def test_sequential_write_throughput(self):
        stack = build_stack(enable_cache=False)
        res = workloads.sequential_write(
            stack.mux, stack.clock, "/f", 4 * MIB, io_size=MIB
        )
        assert res.bytes_moved == 4 * MIB
        assert res.mb_per_s > 0

    def test_random_write_deterministic(self):
        def run():
            stack = build_stack(enable_cache=False)
            return workloads.random_write(
                stack.mux, stack.clock, "/f", 4 * MIB, 1 * MIB, io_size=16 * 1024
            ).elapsed_s

        assert run() == run()

    def test_random_read_single_byte(self):
        stack = build_stack(enable_cache=False)
        handle = workloads.make_file(stack.mux, stack.clock, "/f", 1 * MIB)
        stack.mux.close(handle)
        res = workloads.random_read_single_byte(
            stack.mux, stack.clock, "/f", 1 * MIB, iterations=50
        )
        assert res.operations == 50
        assert res.mean_us > 0

    def test_hot_set_reads(self):
        stack = build_stack(enable_cache=False)
        handle = workloads.make_file(stack.mux, stack.clock, "/f", 1 * MIB)
        stack.mux.close(handle)
        res = workloads.hot_set_reads(
            stack.mux, stack.clock, "/f", 1 * MIB, 64 * 1024, iterations=40
        )
        assert res.operations == 40


class TestBuilders:
    def test_build_strata(self):
        strata_stack = build_strata(pin_target="ssd")
        assert strata_stack.fs.pin_target == "ssd"
        strata_stack.fs.write_file("/f", b"x")
        assert strata_stack.fs.read_file("/f") == b"x"

    def test_build_pinned_mux(self):
        stack = build_pinned_mux("hdd", enable_cache=False)
        stack.mux.write_file("/f", b"x" * 4096)
        assert stack.vfs.exists("/tiers/hdd/f")

    def test_vfs_view(self):
        stack = build_stack(enable_cache=False)
        view = VfsView(stack.vfs, "/mux")
        handle = view.create("/f")
        view.write(handle, 0, b"through the view")
        assert view.read(handle, 0, 16) == b"through the view"
        assert view.getattr("/f").size == 16
        view.fsync(handle)
        view.truncate(handle, 7)
        view.close(handle)
        view.unlink("/f")
        assert not stack.mux.exists("/f")


class TestReporting:
    def test_format_rows(self):
        rows = [ResultRow("E", "cfg", "metric", "1.0x", "1.1x")]
        text = format_rows(rows, "title")
        assert "title" in text
        assert "metric" in text
        assert "1.1x" in text
