"""Mirror-optimized tiering (MOST): replica sets, sync, routing, fsck.

Covers the :class:`ReplicaSet` interval algebra, the ``replica_runs``
read-routing decomposition, the lazy :class:`MirrorEngine` sync loop
(pacing, deadline promotion, offline tolerance), the mux read path's
fastest-healthy-replica routing with failover ordering, write-induced
staleness, crash invalidation, lifecycle cleanup (truncate, punch,
unlink, migration, drop), the fsck replica-divergence audit, and the
``mirror`` policy's plan_mirrors/plan_migrations interplay.
"""

import pytest

from repro.core.blt import ByteArrayBlt, ReplicaSet, replica_runs
from repro.core.health import HEALTH_SUSPECT_ERRORS, HealthState
from repro.core.mirror import MirrorEngine
from repro.core.policies import MirrorPolicy
from repro.core.policy import (
    FileView,
    MigrationOrder,
    MirrorOrder,
    TierState,
)
from repro.devices.profile import DeviceKind
from repro.stack import build_stack
from repro.tools import fsck

BS = 4096
KIB = 1024
MIB = 1024 * 1024


def pattern(size: int, salt: int = 0) -> bytes:
    return bytes((i * 31 + 7 + salt) % 256 for i in range(size))


def place_on(stack, path, tier_name, blocks=16, salt=0):
    """Create a file and move every block onto ``tier_name``."""
    mux = stack.mux
    handle = mux.create(path)
    mux.write(handle, 0, pattern(blocks * BS, salt))
    mux.fsync(handle)
    inode = mux.ns.resolve(path)
    dst = stack.tier_ids[tier_name]
    for start, count, tid in list(inode.blt.runs(0, blocks)):
        if tid is not None and tid != dst:
            mux.engine.migrate_now(
                MigrationOrder(inode.ino, start, count, tid, dst)
            )
    assert inode.blt.tiers_used() == [dst]
    return handle


# ---------------------------------------------------------------------------
# ReplicaSet interval algebra
# ---------------------------------------------------------------------------


class TestReplicaSet:
    def test_starts_empty(self):
        replicas = ReplicaSet()
        assert replicas.tiers() == []
        assert not replicas.has_stale()
        assert replicas.clean_blocks() == 0

    def test_stale_then_synced(self):
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.mark_stale(1, 0, 8, now_ns=100)
        assert replicas.stale_blocks() == 8
        assert replicas.stale_since_ns(1) == 100
        replicas.mark_synced(1, 0, 8)
        assert replicas.stale_blocks() == 0
        assert replicas.clean_blocks(1) == 8
        assert replicas.covers_clean(1, 0, 8)
        assert replicas.stale_since_ns(1) is None
        replicas.check_invariants()

    def test_note_write_dirties_mirrors_but_not_the_writer(self):
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.add_tier(2)
        for tier in (1, 2):
            replicas.mark_stale(tier, 0, 8, now_ns=0)
            replicas.mark_synced(tier, 0, 8)
        # tier 1 absorbed a write over [2,+2): it now owns those bytes,
        # so its own mirror tracking drops them; tier 2 goes stale there
        replicas.note_write(2, 2, dst_tier=1, now_ns=50)
        assert replicas.clean_runs(1) == [(0, 2), (4, 4)]
        assert replicas.stale_runs(1) == []
        assert replicas.stale_runs(2) == [(2, 2)]
        assert replicas.stale_since_ns(2) == 50
        replicas.check_invariants()

    def test_note_write_from_outside_dirties_everyone(self):
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.add_tier(2)
        for tier in (1, 2):
            replicas.mark_stale(tier, 0, 4, now_ns=0)
            replicas.mark_synced(tier, 0, 4)
        replicas.note_write(0, 4, dst_tier=9, now_ns=10)  # not a mirror
        assert replicas.stale_runs(1) == [(0, 4)]
        assert replicas.stale_runs(2) == [(0, 4)]

    def test_on_moved_drops_src_and_dst_tracking(self):
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.mark_stale(1, 0, 8, now_ns=0)
        replicas.mark_synced(1, 0, 8)
        # authority for [0,+4) moved from tier 3 onto the mirror tier 1:
        # tier 1 now owns those blocks, so it stops mirroring them
        replicas.on_moved([(0, 4)], src_tier=3, dst_tier=1)
        assert replicas.clean_runs(1) == [(4, 4)]
        replicas.check_invariants()

    def test_mark_all_stale_invalidates_every_clean_interval(self):
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.add_tier(2)
        replicas.mark_stale(1, 0, 8, now_ns=0)
        replicas.mark_synced(1, 0, 8)
        replicas.mark_stale(2, 4, 4, now_ns=0)
        replicas.mark_all_stale(now_ns=99)
        assert replicas.clean_blocks() == 0
        assert replicas.stale_runs(1) == [(0, 8)]
        assert replicas.stale_runs(2) == [(4, 4)]
        replicas.check_invariants()

    def test_retire_tier_returns_everything_it_tracked(self):
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.mark_stale(1, 0, 4, now_ns=0)
        replicas.mark_synced(1, 0, 4)
        replicas.mark_stale(1, 6, 2, now_ns=0)
        runs = replicas.retire_tier(1)
        assert runs == [(0, 4), (6, 2)]
        assert not replicas.has_tier(1)
        assert replicas.tiers() == []

    def test_drop_range_forgets_a_truncated_tail(self):
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.mark_stale(1, 0, 16, now_ns=0)
        replicas.mark_synced(1, 0, 16)
        replicas.drop_range(8, 8)
        assert replicas.clean_runs(1) == [(0, 8)]
        replicas.check_invariants()


class TestReplicaRuns:
    def test_segments_annotated_with_covering_mirrors(self):
        blt = ByteArrayBlt()
        blt.map_range(0, 8, 3)  # authoritative on tier 3
        replicas = ReplicaSet()
        replicas.add_tier(1)
        replicas.mark_stale(1, 0, 8, now_ns=0)
        replicas.mark_synced(1, 0, 4)  # only the first half is clean
        segs = list(replica_runs(blt, replicas, 0, 8))
        assert segs == [(0, 4, 3, (1,)), (4, 4, 3, ())]

    def test_owner_tier_never_lists_itself_as_mirror(self):
        blt = ByteArrayBlt()
        blt.map_range(0, 4, 1)
        replicas = ReplicaSet()
        replicas.add_tier(1)
        # stale bookkeeping on blocks tier 1 happens to own must not
        # surface tier 1 as its own mirror
        replicas.mark_stale(1, 0, 4, now_ns=0)
        replicas.mark_synced(1, 0, 4)
        segs = list(replica_runs(blt, replicas, 0, 4))
        assert segs == [(0, 4, 1, ())]


# ---------------------------------------------------------------------------
# serving reads from mirrors
# ---------------------------------------------------------------------------


class TestMirrorServing:
    @pytest.fixture
    def stack(self):
        return build_stack(enable_cache=False)

    def test_read_routes_to_fastest_clean_mirror(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/hot", "hdd")
        inode = mux.ns.resolve("/hot")
        pm = stack.tier_ids["pm"]
        mux.mirrors.add_mirror(inode, pm)
        assert inode.replicas.stale_blocks() == 16
        assert mux.mirrors.sync_file(inode) == 16
        assert inode.replicas.clean_blocks(pm) == 16

        before = mux.stats.get("reads_from_mirror")
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        assert mux.stats.get("reads_from_mirror") == before + 1
        assert fsck.check_mux(mux) == []
        mux.close(handle)

    def test_mirror_is_cheaper_than_the_hdd(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/hot", "hdd")
        inode = mux.ns.resolve("/hot")
        t0 = stack.clock.now_ns
        mux.read(handle, 0, 16 * BS)
        hdd_cost = stack.clock.now_ns - t0
        mux.mirrors.add_mirror(inode, stack.tier_ids["pm"])
        mux.mirrors.sync_file(inode)
        t0 = stack.clock.now_ns
        mux.read(handle, 0, 16 * BS)
        pm_cost = stack.clock.now_ns - t0
        assert pm_cost < hdd_cost
        mux.close(handle)

    def test_stale_interval_is_never_served(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        pm = stack.tier_ids["pm"]
        mux.mirrors.add_mirror(inode, pm)
        mux.mirrors.sync_file(inode)

        # overwrite through the mux: the mirror must go stale and reads
        # must reflect the new bytes, not the old mirror copy
        mux.write(handle, 4 * BS, b"\xee" * BS)
        mux.fsync(handle)
        got = mux.read(handle, 0, 16 * BS)
        assert got[4 * BS : 5 * BS] == b"\xee" * BS
        assert got[:4 * BS] == pattern(16 * BS)[: 4 * BS]

        # re-converge and verify again from the mirror
        mux.mirrors.sync_file(inode)
        assert not inode.replicas.has_stale()
        got = mux.read(handle, 0, 16 * BS)
        assert got[4 * BS : 5 * BS] == b"\xee" * BS
        assert fsck.check_mux(mux) == []
        mux.close(handle)

    def test_unmirrored_files_never_touch_the_replica_path(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/plain", "ssd")
        mux.read(handle, 0, 16 * BS)
        assert mux.ns.resolve("/plain").replicas is None
        assert mux.stats.get("reads_from_mirror") == 0
        mux.close(handle)


class TestFailoverOrdering:
    """The satellite scenario: reads land on the healthiest fastest
    replica, degrading PM -> SSD -> authoritative HDD without EIO."""

    @pytest.fixture
    def stack(self):
        return build_stack(enable_cache=False)

    def test_read_failover_order(self, stack):
        mux = stack.mux
        pm, ssd = stack.tier_ids["pm"], stack.tier_ids["ssd"]
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        for tier in (pm, ssd):
            mux.mirrors.add_mirror(inode, tier)
        mux.mirrors.sync_file(inode)
        assert inode.replicas.clean_blocks(pm) == 16
        assert inode.replicas.clean_blocks(ssd) == 16
        want = pattern(16 * BS)

        def routed(mux, inode):
            return {tid for _, _, tid in mux._route_replicas(inode, 0, 16)}

        # all healthy: the PM mirror (rank 0) wins
        assert routed(mux, inode) == {pm}
        assert mux.read(handle, 0, 16 * BS) == want

        # PM mirror OFFLINE: fall over to the SSD mirror
        mux.mark_tier_offline(pm)
        assert routed(mux, inode) == {ssd}
        assert mux.read(handle, 0, 16 * BS) == want

        # SSD mirror SUSPECT too: the healthy authoritative HDD copy
        # now outranks both degraded mirrors
        for _ in range(HEALTH_SUSPECT_ERRORS):
            mux.registry.get(ssd).health.record_error()
        assert mux.registry.get(ssd).health.state is HealthState.SUSPECT
        assert routed(mux, inode) == {stack.tier_ids["hdd"]}
        assert mux.read(handle, 0, 16 * BS) == want

        # the whole cascade served without a single offline failure
        assert mux.stats.get("reads_failed_offline") == 0
        assert mux.stats.get("reads_degraded_mirror") == 0
        mux.close(handle)

    def test_degraded_authority_served_by_healthy_mirror(self, stack):
        mux = stack.mux
        ssd, hdd = stack.tier_ids["ssd"], stack.tier_ids["hdd"]
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        mux.mirrors.add_mirror(inode, ssd)
        mux.mirrors.sync_file(inode)

        # the *authoritative* tier dies; pre-MOST this read was an EIO
        mux.mark_tier_offline(hdd)
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        assert mux.stats.get("reads_failed_offline") == 0
        assert mux.stats.get("reads_degraded_mirror") > 0
        mux.close(handle)


# ---------------------------------------------------------------------------
# crash invalidation
# ---------------------------------------------------------------------------


class TestCrashInvalidation:
    def test_crash_marks_every_mirror_stale(self):
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        pm = stack.tier_ids["pm"]
        mux.mirrors.add_mirror(inode, pm)
        mux.mirrors.sync_file(inode)
        assert inode.replicas.clean_blocks() == 16
        mux.close(handle)

        mux.crash()
        mux.recover()
        inode = mux.ns.resolve("/f")
        assert inode.replicas is not None
        assert inode.replicas.clean_blocks() == 0
        assert inode.replicas.stale_blocks() == 16
        assert fsck.check_mux(mux) == []

        # reads fall back to the authoritative copy, and the sync engine
        # re-converges the invalidated mirror afterwards
        handle = mux.open("/f")
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        assert mux.mirrors.sync_file(inode) == 16
        assert inode.replicas.clean_blocks(pm) == 16
        mux.close(handle)


# ---------------------------------------------------------------------------
# lifecycle cleanup
# ---------------------------------------------------------------------------


class TestLifecycle:
    @pytest.fixture
    def stack(self):
        return build_stack(enable_cache=False)

    def test_truncate_drops_replica_tail(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        mux.mirrors.add_mirror(inode, stack.tier_ids["pm"])
        mux.mirrors.sync_file(inode)
        mux.truncate(handle, 8 * BS)
        assert inode.replicas.clean_runs(stack.tier_ids["pm"]) == [(0, 8)]
        assert fsck.check_mux(mux) == []
        mux.close(handle)

    def test_punch_hole_clears_mirror_coverage(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        pm = stack.tier_ids["pm"]
        mux.mirrors.add_mirror(inode, pm)
        mux.mirrors.sync_file(inode)
        mux.punch_hole(handle, 4 * BS, 4 * BS)
        assert inode.replicas.clean_runs(pm) == [(0, 4), (8, 8)]
        got = mux.read(handle, 0, 16 * BS)
        assert got[4 * BS : 8 * BS] == bytes(4 * BS)
        assert fsck.check_mux(mux) == []
        mux.close(handle)

    def test_unlink_forgets_the_mirror_registration(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        mux.mirrors.add_mirror(inode, stack.tier_ids["pm"])
        mux.mirrors.sync_file(inode)
        mux.close(handle)
        mux.unlink("/f")
        assert mux.mirrors.mirrored_inos() == []
        assert mux.mirrors.tick() == 0

    def test_migration_into_the_mirror_tier_consumes_it(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        pm, hdd = stack.tier_ids["pm"], stack.tier_ids["hdd"]
        mux.mirrors.add_mirror(inode, pm)
        mux.mirrors.sync_file(inode)
        mux.engine.migrate_now(MigrationOrder(inode.ino, 0, 8, hdd, pm))
        # tier pm now *owns* [0,+8): it cannot also mirror those blocks
        assert inode.replicas.clean_runs(pm) == [(8, 8)]
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        assert fsck.check_mux(mux) == []
        mux.close(handle)

    def test_drop_mirror_punches_only_unowned_blocks(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        pm, hdd = stack.tier_ids["pm"], stack.tier_ids["hdd"]
        mux.mirrors.add_mirror(inode, pm)
        mux.mirrors.sync_file(inode)
        # authority for the first half moves onto the mirror tier
        mux.engine.migrate_now(MigrationOrder(inode.ino, 0, 8, hdd, pm))
        mux.mirrors.drop_mirror(inode, pm)
        assert inode.replicas is None
        # the authoritative half survived the reclaim
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        assert fsck.check_mux(mux, deep=True) == []
        mux.close(handle)

    def test_evacuate_retires_mirrors_on_the_leaving_tier(self, stack):
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        pm = stack.tier_ids["pm"]
        mux.mirrors.add_mirror(inode, pm)
        mux.mirrors.sync_file(inode)
        mux.evacuate(pm)
        assert inode.replicas is None
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        assert fsck.check_mux(mux) == []
        mux.close(handle)


# ---------------------------------------------------------------------------
# pacing and deadline promotion (dispatcher fairness)
# ---------------------------------------------------------------------------


class TestPacingAndDeadline:
    def test_loaded_channels_defer_then_deadline_promotes(self):
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        mux.mirrors.add_mirror(inode, stack.tier_ids["pm"])

        # a saturated channel defers the paced sync...
        mux.pressure.instant_load_of = lambda tier_id, now_ns: 5.0
        assert mux.mirrors.tick() == 0
        assert mux.mirrors.stats.get("defer_ticks") > 0
        assert inode.replicas.stale_blocks() == 16

        # ...but only until the staleness deadline: then the sync runs
        # into the load anyway instead of starving forever
        stack.clock.advance_ns(MirrorEngine.MAX_STALENESS_NS + 1)
        assert mux.mirrors.tick() == 16
        assert mux.mirrors.stats.get("deadline_promotions") > 0
        assert not inode.replicas.has_stale()
        mux.close(handle)

    def test_offline_mirror_tier_stays_stale_until_it_returns(self):
        stack = build_stack(enable_cache=False)
        mux = stack.mux
        handle = place_on(stack, "/f", "hdd")
        inode = mux.ns.resolve("/f")
        pm = stack.tier_ids["pm"]
        mux.mirrors.add_mirror(inode, pm)
        mux.mark_tier_offline(pm)
        assert mux.mirrors.sync_file(inode) == 0
        assert mux.mirrors.stats.get("sync_skipped_offline") > 0
        assert inode.replicas.stale_blocks() == 16
        mux.mark_tier_online(pm)
        assert mux.mirrors.sync_file(inode) == 16
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        mux.close(handle)


# ---------------------------------------------------------------------------
# fsck replica-divergence audit (injected corruption)
# ---------------------------------------------------------------------------


class TestFsckDivergence:
    @pytest.fixture
    def mirrored(self):
        stack = build_stack(enable_cache=False)
        handle = place_on(stack, "/f", "hdd")
        inode = stack.mux.ns.resolve("/f")
        stack.mux.mirrors.add_mirror(inode, stack.tier_ids["pm"])
        stack.mux.mirrors.sync_file(inode)
        assert fsck.check_mux(stack.mux) == []
        return stack, inode

    def test_clean_and_stale_overlap_detected(self, mirrored):
        stack, inode = mirrored
        pm = stack.tier_ids["pm"]
        # corrupt the bookkeeping directly: [2,+2) both clean and stale
        inode.replicas._stale[pm].add_range(2, 2)
        problems = fsck.check_mux(stack.mux)
        assert any("both clean and stale" in p for p in problems)

    def test_clean_claim_beyond_mapped_range_detected(self, mirrored):
        stack, inode = mirrored
        pm = stack.tier_ids["pm"]
        inode.replicas._clean[pm].add_range(100, 4)
        problems = fsck.check_mux(stack.mux)
        assert any("beyond the mapped range" in p for p in problems)

    def test_clean_claim_over_hole_detected(self, mirrored):
        stack, inode = mirrored
        handle = stack.mux.open("/f")
        stack.mux.punch_hole(handle, 4 * BS, 4 * BS)
        stack.mux.close(handle)
        pm = stack.tier_ids["pm"]
        inode.replicas._clean[pm].add_range(5, 1)  # claims a punched block
        problems = fsck.check_mux(stack.mux)
        assert any("over a hole" in p for p in problems)

    def test_self_mirroring_authority_detected(self, mirrored):
        stack, inode = mirrored
        hdd = stack.tier_ids["hdd"]  # the authoritative owner
        inode.replicas.add_tier(hdd)
        inode.replicas._clean[hdd].add_range(0, 4)
        problems = fsck.check_mux(stack.mux)
        assert any("owns authoritatively" in p for p in problems)

    def test_unknown_tier_reference_detected(self, mirrored):
        stack, inode = mirrored
        inode.replicas.add_tier(77)
        problems = fsck.check_mux(stack.mux)
        assert any("unknown tier 77" in p for p in problems)


# ---------------------------------------------------------------------------
# the mirror policy
# ---------------------------------------------------------------------------


def tier_state(tier_id, name, rank, kind, free, total, health=HealthState.HEALTHY):
    return TierState(
        tier_id=tier_id,
        name=name,
        rank=rank,
        kind=kind,
        free_bytes=free,
        total_bytes=total,
        health=health,
    )


class TestMirrorPolicy:
    def tiers(self, pm_free=32 * MIB, pm_health=HealthState.HEALTHY):
        return [
            tier_state(1, "pm", 0, DeviceKind.PERSISTENT_MEMORY,
                       pm_free, 64 * MIB, pm_health),
            tier_state(3, "hdd", 2, DeviceKind.HARD_DISK, MIB * 900, MIB * 1024),
        ]

    def view(self, ino, size=64 * KIB, tier=3):
        blocks = size // BS
        return FileView(
            ino=ino, path=f"/f{ino}", size=size,
            blocks_by_tier={tier: blocks}, runs=[(0, blocks, tier)],
        )

    def test_hot_read_mostly_small_file_earns_a_mirror(self):
        policy = MirrorPolicy()
        for _ in range(10):
            policy.on_access(1, 0, 16, 3, "read", 0.0)
        orders = policy.plan_mirrors(self.tiers(), [self.view(1)])
        assert orders == [MirrorOrder(1, 1, "add", "hot-read-mostly")]

    def test_write_heavy_file_is_not_mirrored(self):
        policy = MirrorPolicy()
        for _ in range(10):
            policy.on_access(1, 0, 16, 3, "write", 0.0)
        assert policy.plan_mirrors(self.tiers(), [self.view(1)]) == []

    def test_cold_file_is_not_mirrored(self):
        policy = MirrorPolicy()
        policy.on_access(1, 0, 16, 3, "read", 0.0)
        assert policy.plan_mirrors(self.tiers(), [self.view(1)]) == []

    def test_large_file_is_not_mirrored(self):
        policy = MirrorPolicy(max_file_bytes=MIB)
        for _ in range(10):
            policy.on_access(1, 0, 16, 3, "read", 0.0)
        view = self.view(1, size=2 * MIB)
        assert policy.plan_mirrors(self.tiers(), [view]) == []

    def test_file_already_on_the_fast_tier_is_skipped(self):
        policy = MirrorPolicy()
        for _ in range(10):
            policy.on_access(1, 0, 16, 1, "read", 0.0)
        view = self.view(1, tier=1)  # lives on PM already
        assert policy.plan_mirrors(self.tiers(), [view]) == []

    def test_cooled_mirror_is_dropped(self):
        policy = MirrorPolicy()
        for _ in range(10):
            policy.on_access(1, 0, 16, 3, "read", 0.0)
        assert policy.plan_mirrors(self.tiers(), [self.view(1)])
        # heat decays (via the migration planner, as in mux.maintain)
        # with no further accesses until the file is cold
        for _ in range(30):
            policy.plan_migrations(self.tiers(), [self.view(1)])
            orders = policy.plan_mirrors(self.tiers(), [self.view(1)])
            if orders:
                break
        assert orders == [MirrorOrder(1, 1, "drop", "cooled")]

    def test_offline_mirror_tier_sheds_its_mirrors(self):
        policy = MirrorPolicy()
        for _ in range(10):
            policy.on_access(1, 0, 16, 3, "read", 0.0)
        assert policy.plan_mirrors(self.tiers(), [self.view(1)])
        orders = policy.plan_mirrors(
            self.tiers(pm_health=HealthState.OFFLINE), [self.view(1)]
        )
        assert MirrorOrder(1, 1, "drop", "tier-gone") in orders

    def test_space_pressure_reclaims_the_coldest_mirror(self):
        policy = MirrorPolicy()
        for ino, accesses in ((1, 12), (2, 6)):
            for _ in range(accesses):
                policy.on_access(ino, 0, 16, 3, "read", 0.0)
        views = [self.view(1), self.view(2)]
        assert len(policy.plan_mirrors(self.tiers(), views)) == 2
        # the mirror tier fills past reclaim_util: coldest mirrors go
        orders = policy.plan_mirrors(
            self.tiers(pm_free=MIB), views  # 63/64 MiB used
        )
        drops = [o for o in orders if o.action == "drop"]
        assert drops and drops[0].ino == 2  # colder of the two

    def test_promotions_into_the_mirror_tier_are_suppressed(self):
        policy = MirrorPolicy()
        for _ in range(10):
            policy.on_access(1, 0, 16, 3, "read", 0.0)
        tiers = self.tiers()
        views = [self.view(1)]
        assert policy.plan_mirrors(tiers, views)
        # hot + resident downhill + cool fast tier would normally promote
        for _ in range(10):
            policy.on_access(1, 0, 16, 3, "read", 0.0)
        orders = policy.plan_migrations(tiers, views)
        assert not any(o.dst_tier == 1 for o in orders)


class TestMaintainIntegration:
    def test_maintain_grants_syncs_and_serves_a_mirror(self):
        # promote_util=0.0 disables promotion so the test isolates the
        # mirror grant (otherwise the hot file is simply moved to PM)
        stack = build_stack(
            policy=MirrorPolicy(promote_util=0.0), enable_cache=False
        )
        mux = stack.mux
        handle = place_on(stack, "/hot", "hdd")
        for _ in range(10):
            mux.read(handle, 0, 16 * BS)
        for _ in range(8):
            mux.maintain()
            if not mux.mirrors.stale_backlog() and mux.mirrors.mirrored_inos():
                break
        inode = mux.ns.resolve("/hot")
        assert inode.replicas is not None
        assert inode.replicas.clean_blocks() == 16
        before = mux.stats.get("reads_from_mirror")
        assert mux.read(handle, 0, 16 * BS) == pattern(16 * BS)
        assert mux.stats.get("reads_from_mirror") == before + 1
        assert fsck.check_mux(mux, deep=True) == []
        mux.close(handle)
