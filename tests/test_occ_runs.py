"""Run-level OCC migration is observationally identical to the scalar
per-block protocol: same simulated time, same results, same data, same
final block placement — under clean runs, adversarial interleaved writes,
lock fallback and no-space aborts alike."""

from typing import Generator, List

import pytest

from repro.core import calibration as cal
from repro.core.intervals import (
    BlockIntervalSet,
    intersect_runs,
    normalize_runs,
    runs_length,
    subtract_runs,
)
from repro.core.occ import MigrationResult, OccSynchronizer, _contiguous_spans
from repro.core.policy import MigrationOrder
from repro.errors import NoSpace
from repro.sim.rng import DeterministicRng
from repro.sim.tasks import run_interleaved
from repro.stack import build_stack

MIB = 1024 * 1024
BS = 4096


class ScalarOccSynchronizer(OccSynchronizer):
    """The pre-optimization per-block OCC protocol, kept as a reference.

    Reproduces the original algorithm verbatim (materialized block lists,
    per-block clean/conflicted/retry comprehensions), adapted only to the
    run-based ``blt_commit_move`` signature.  The production run-level
    synchronizer must match it observation-for-observation.
    """

    def migrate(
        self, inode, block_start: int, count: int, src_tier: int, dst_tier: int
    ) -> Generator[None, None, MigrationResult]:
        result = MigrationResult()
        if src_tier == dst_tier or count <= 0:
            return result
        targets = self._scalar_blocks_on_src(inode, block_start, count, src_tier)
        result.skipped_blocks = count - len(targets)

        attempts = 0 if self.force_lock else cal.OCC_MAX_RETRIES
        for _ in range(attempts):
            if not targets:
                return result
            result.attempts += 1
            self.stats.add("attempts")
            inode.version += 1
            inode.migration_active = True
            inode.dirty_during_migration.clear()
            version_at_start = inode.version
            self.io.clock.advance_ns(cal.MUX_OCC_CHECK_NS)
            try:
                yield from self._scalar_copy(inode, targets, src_tier, dst_tier)
            except NoSpace:
                inode.version += 1
                inode.migration_active = False
                inode.dirty_during_migration.clear()
                result.aborted_no_space = True
                self.stats.add("no_space_aborts")
                return result
            inode.version += 1
            inode.migration_active = False
            dirty = set(inode.dirty_during_migration)
            inode.dirty_during_migration.clear()
            if inode.version != version_at_start + 1:
                dirty.update(targets)
            clean = [
                b
                for b in targets
                if b not in dirty and inode.blt.lookup(b) == src_tier
            ]
            self._scalar_commit(inode, clean, src_tier, dst_tier, result)
            conflicted = [b for b in targets if b not in clean]
            result.conflicts += len(conflicted)
            if conflicted:
                self.stats.add("conflicts", len(conflicted))
            targets = [b for b in conflicted if inode.blt.lookup(b) == src_tier]

        if targets:
            result.lock_fallback = True
            self.stats.add("lock_fallbacks")
            # like production: a pessimistic lock charges foreground time
            token = self.io.clock.suspend_frames()
            self.io.clock.advance_ns(cal.LOCK_FALLBACK_NS)
            inode.locked = True
            try:
                for _ in self._scalar_copy(inode, targets, src_tier, dst_tier):
                    pass
                self._scalar_commit(inode, targets, src_tier, dst_tier, result)
            except NoSpace:
                result.aborted_no_space = True
                self.stats.add("no_space_aborts")
            finally:
                inode.locked = False
                self.io.clock.resume_frames(token)
        return result

    def _scalar_blocks_on_src(self, inode, block_start, count, src_tier):
        blocks: List[int] = []
        for run_start, run_len, tier in inode.blt.runs(block_start, count):
            if tier == src_tier:
                blocks.extend(range(run_start, run_start + run_len))
        return blocks

    def _scalar_copy(self, inode, blocks, src_tier, dst_tier):
        block_size = self.io.block_size
        for span_start, span_len in _contiguous_spans(blocks):
            copied = 0
            while copied < span_len:
                chunk = min(cal.MIGRATION_CHUNK_BLOCKS, span_len - copied)
                offset = (span_start + copied) * block_size
                data = self.io.tier_read_raw(
                    inode, src_tier, offset, chunk * block_size
                )
                self.io.tier_write_raw(inode, dst_tier, offset, data)
                copied += chunk
                self.stats.add("blocks_copied", chunk)
                yield

    def _scalar_commit(self, inode, blocks, src_tier, dst_tier, result):
        if not blocks:
            return
        self.io.tier_fsync(inode, dst_tier)
        spans = _contiguous_spans(blocks)
        self.io.blt_commit_move(inode, spans, src_tier, dst_tier)
        for span_start, span_len in spans:
            self.io.tier_punch(inode, src_tier, span_start, span_len)
        result.moved_blocks += len(blocks)
        result.bytes_moved += len(blocks) * self.io.block_size
        self.stats.add("blocks_committed", len(blocks))


def _make_stack(scalar: bool):
    stack = build_stack(
        capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 64 * MIB},
        enable_cache=False,
    )
    if scalar:
        stack.mux.engine.occ = ScalarOccSynchronizer(stack.mux)
    return stack


def _prepare(stack, nblocks=16):
    mux = stack.mux
    handle = mux.create("/f")
    payload = b"".join(bytes([i + 1]) * BS for i in range(nblocks))
    mux.write(handle, 0, payload)
    return mux, handle


def _observe(stack, mux, handle, result, nblocks=16):
    """Everything externally visible about a finished migration."""
    inode = mux.ns.get(handle.ino)
    return {
        "now_ns": stack.clock.now_ns,
        "moved": result.moved_blocks,
        "bytes": result.bytes_moved,
        "attempts": result.attempts,
        "conflicts": result.conflicts,
        "lock_fallback": result.lock_fallback,
        "skipped": result.skipped_blocks,
        "aborted": result.aborted_no_space,
        "data": mux.read(handle, 0, nblocks * BS + 64),
        "placement": {t: inode.blt.blocks_on(t) for t in mux.tier_ids()},
        "version": inode.version,
        "locked": inode.locked,
        "active": inode.migration_active,
    }


def _run_scenario(writer_factory, nblocks=16, count=None, start=0):
    """Run one adversarial scenario on both synchronizers; return both views."""
    views = []
    for scalar in (False, True):
        stack = _make_stack(scalar)
        mux, handle = _prepare(stack, nblocks)
        order = MigrationOrder(
            handle.ino,
            start,
            nblocks if count is None else count,
            stack.tier_id("pm"),
            stack.tier_id("ssd"),
        )
        task = mux.engine.submit(order)
        result = run_interleaved(task, writer_factory(mux, handle))
        views.append(_observe(stack, mux, handle, result, nblocks))
    return views


class TestRunLevelEquivalence:
    def test_clean_migration(self):
        new, ref = _run_scenario(lambda mux, handle: (lambda step: None))
        assert new == ref

    def test_single_dirty_block(self):
        def factory(mux, handle):
            def writer(step):
                if step == 0:
                    mux.write(handle, 3 * BS, b"USERDATA")

            return writer

        new, ref = _run_scenario(factory)
        assert new == ref
        assert new["conflicts"] > 0

    def test_dirty_range_every_other_step(self):
        def factory(mux, handle):
            def writer(step):
                if step % 2 == 0:
                    mux.write(handle, 5 * BS, bytes([step % 251]) * (3 * BS))

            return writer

        new, ref = _run_scenario(factory)
        assert new == ref

    def test_hostile_writer_forces_lock_fallback(self):
        def factory(mux, handle):
            inode = mux.ns.get(handle.ino)

            def writer(step):
                if inode.migration_active:
                    for fb in range(16):
                        mux.write(handle, fb * BS, bytes([0xEE]))

            return writer

        new, ref = _run_scenario(factory)
        assert new == ref
        assert new["lock_fallback"]

    def test_append_during_migration(self):
        def factory(mux, handle):
            def writer(step):
                if step == 0:
                    mux.append(handle, b"GROWN")

            return writer

        new, ref = _run_scenario(factory)
        assert new == ref

    def test_partial_range_with_holes(self):
        # migrate a window past EOF: skipped blocks counted identically
        new, ref = _run_scenario(
            lambda mux, handle: (lambda step: None), count=24
        )
        assert new == ref
        assert new["skipped"] == 8

    @pytest.mark.parametrize("seed", [3, 17, 92])
    def test_randomized_adversary(self, seed):
        def factory(mux, handle):
            rng = DeterministicRng(seed)

            def writer(step):
                roll = rng.random()
                if roll < 0.45:
                    offset = rng.randint(0, 15) * BS
                    mux.write(handle, offset, bytes([rng.randint(1, 255)]) * 512)
                elif roll < 0.55:
                    start = rng.randint(0, 12)
                    mux.write(handle, start * BS, b"\x7f" * (4 * BS))

            return writer

        new, ref = _run_scenario(factory)
        assert new == ref

    def test_committed_runs_reported(self, stack_nocache):
        stack = stack_nocache
        mux, handle = _prepare(stack)
        order = MigrationOrder(
            handle.ino, 0, 16, stack.tier_id("pm"), stack.tier_id("ssd")
        )
        result = mux.engine.migrate_now(order)
        # 16 contiguous clean blocks commit as one run, not 16
        assert result.committed_runs == 1
        assert mux.engine.stats.get("runs_moved") == 1


class TestRunAlgebra:
    """Interval algebra matches the set-based definitions it replaced."""

    CASES = [
        ([], []),
        ([(0, 4)], [(2, 4)]),
        ([(0, 10)], [(3, 2), (7, 1)]),
        ([(0, 2), (5, 3), (20, 1)], [(1, 6)]),
        ([(4, 4)], [(0, 12)]),
        ([(0, 3), (3, 3)], [(2, 2)]),
    ]

    @staticmethod
    def _blocks(runs):
        out = set()
        for s, n in runs:
            out.update(range(s, s + n))
        return out

    @pytest.mark.parametrize("a,b", CASES)
    def test_subtract_matches_sets(self, a, b):
        a, b = normalize_runs(a), normalize_runs(b)
        assert self._blocks(subtract_runs(a, b)) == (
            self._blocks(a) - self._blocks(b)
        )

    @pytest.mark.parametrize("a,b", CASES)
    def test_intersect_matches_sets(self, a, b):
        a, b = normalize_runs(a), normalize_runs(b)
        assert self._blocks(intersect_runs(a, b)) == (
            self._blocks(a) & self._blocks(b)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_algebra(self, seed):
        rng = DeterministicRng(seed)

        def rand_runs():
            return normalize_runs(
                (rng.randint(0, 60), rng.randint(0, 6))
                for _ in range(rng.randint(0, 8))
            )

        for _ in range(50):
            a, b = rand_runs(), rand_runs()
            assert self._blocks(subtract_runs(a, b)) == (
                self._blocks(a) - self._blocks(b)
            )
            assert self._blocks(intersect_runs(a, b)) == (
                self._blocks(a) & self._blocks(b)
            )
            merged = normalize_runs(a + b)
            assert self._blocks(merged) == self._blocks(a) | self._blocks(b)
            # normalized output is sorted, disjoint, non-adjacent
            for (s1, n1), (s2, _) in zip(merged, merged[1:]):
                assert s1 + n1 < s2

    def test_normalize_merges_adjacent_and_overlapping(self):
        assert normalize_runs([(5, 3), (0, 2), (2, 3), (8, 0)]) == [(0, 8)]
        assert runs_length([(0, 8), (10, 2)]) == 10


class TestBlockIntervalSet:
    def test_set_compat(self):
        s = BlockIntervalSet()
        assert not s
        s.add(4)
        s.add(5)
        s.add(1)
        assert s
        assert s == {1, 4, 5}
        assert 4 in s and 2 not in s
        assert sorted(s) == [1, 4, 5]
        assert len(s) == 3
        s.clear()
        assert s == set()

    def test_add_range_merging(self):
        s = BlockIntervalSet()
        s.add_range(10, 4)
        s.add_range(0, 2)
        s.add_range(14, 2)  # adjacent: extends [10,14) to [10,16)
        s.add_range(1, 10)  # bridges everything up to 11
        assert s.runs() == [(0, 16)]

    def test_matches_set_reference_randomized(self):
        rng = DeterministicRng(99)
        s = BlockIntervalSet()
        ref = set()
        for _ in range(400):
            if rng.random() < 0.7:
                start, n = rng.randint(0, 200), rng.randint(1, 9)
                s.add_range(start, n)
                ref.update(range(start, start + n))
            else:
                b = rng.randint(0, 210)
                s.add(b)
                ref.add(b)
        assert s == ref
        assert set(s) == ref
        assert runs_length(s.runs()) == len(ref)
