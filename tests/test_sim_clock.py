"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import NSEC_PER_SEC, SimClock, microseconds, milliseconds, seconds


class TestConversions:
    def test_seconds(self):
        assert seconds(1.0) == NSEC_PER_SEC

    def test_seconds_rounds(self):
        assert seconds(1.5e-9) == 2

    def test_microseconds(self):
        assert microseconds(3.0) == 3_000

    def test_milliseconds(self):
        assert milliseconds(2.0) == 2_000_000


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_custom_start(self):
        assert SimClock(start_ns=500).now_ns == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_ns=-1)

    def test_advance(self):
        clock = SimClock()
        clock.advance_ns(100)
        clock.advance_ns(23)
        assert clock.now_ns == 123

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance_ns(7) == 7

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_ns(-1)

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance_ns(0)
        assert clock.now_ns == 0

    def test_charge_seconds(self):
        clock = SimClock()
        clock.charge(0.5)
        assert clock.now_ns == NSEC_PER_SEC // 2

    def test_charge_us(self):
        clock = SimClock()
        clock.charge_us(2.5)
        assert clock.now_ns == 2500

    def test_now_seconds(self):
        clock = SimClock()
        clock.advance_ns(NSEC_PER_SEC)
        assert clock.now() == pytest.approx(1.0)

    def test_integer_precision_no_drift(self):
        clock = SimClock()
        for _ in range(1_000):
            clock.advance_ns(3)
        assert clock.now_ns == 3_000


class TestStopwatch:
    def test_elapsed(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance_ns(42)
        assert watch.elapsed_ns == 42

    def test_elapsed_seconds(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.charge(2.0)
        assert watch.elapsed == pytest.approx(2.0)

    def test_restart(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance_ns(10)
        watch.restart()
        clock.advance_ns(5)
        assert watch.elapsed_ns == 5


class TestFrames:
    def test_frame_starts_at_now(self):
        clock = SimClock()
        clock.advance_ns(100)
        assert clock.push_frame() == 100
        assert clock.now_ns == 100

    def test_frame_advance_does_not_move_global(self):
        clock = SimClock()
        clock.push_frame()
        clock.advance_ns(500)
        assert clock.now_ns == 500
        assert clock.global_now_ns == 0
        assert clock.pop_frame() == 500
        assert clock.now_ns == 0

    def test_pop_returns_cursor_for_caller_to_fold(self):
        clock = SimClock()
        completions = []
        for cost in (300, 700, 100):
            clock.push_frame()
            clock.advance_ns(cost)
            completions.append(clock.pop_frame())
        clock.advance_to(max(completions))
        assert clock.now_ns == 700  # max, not sum

    def test_explicit_start(self):
        clock = SimClock()
        clock.advance_ns(50)
        assert clock.push_frame(start_ns=200) == 200
        clock.advance_ns(10)
        assert clock.pop_frame() == 210

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock().push_frame(start_ns=-5)

    def test_pop_without_frame_raises(self):
        with pytest.raises(RuntimeError):
            SimClock().pop_frame()

    def test_nested_frames(self):
        clock = SimClock()
        clock.push_frame()
        clock.advance_ns(100)
        clock.push_frame()
        clock.advance_ns(9)
        assert clock.pop_frame() == 109
        assert clock.now_ns == 100

    def test_advance_to_inside_frame(self):
        clock = SimClock()
        clock.push_frame(start_ns=40)
        clock.advance_to(90)
        assert clock.now_ns == 90
        clock.advance_to(10)  # never backwards
        assert clock.pop_frame() == 90

    def test_background_flag(self):
        clock = SimClock()
        assert not clock.in_background
        clock.push_frame(background=True)
        assert clock.in_background
        clock.push_frame()  # nested foreground frame keeps bg context
        assert clock.in_background
        clock.pop_frame()
        clock.pop_frame()
        assert not clock.in_background

    def test_in_frame(self):
        clock = SimClock()
        assert not clock.in_frame
        clock.push_frame()
        assert clock.in_frame
        clock.pop_frame()
        assert not clock.in_frame


class TestSuspendFrames:
    def test_suspended_charges_hit_global(self):
        clock = SimClock()
        clock.push_frame(background=True)
        clock.advance_ns(100)
        token = clock.suspend_frames()
        assert not clock.in_frame and not clock.in_background
        clock.advance_ns(1000)  # pessimistic-lock work: foreground time
        assert clock.global_now_ns == 1000
        clock.resume_frames(token)
        assert clock.in_frame and clock.in_background

    def test_resume_pulls_cursor_up_to_global(self):
        clock = SimClock()
        clock.push_frame()
        clock.advance_ns(100)
        token = clock.suspend_frames()
        clock.advance_ns(5000)
        clock.resume_frames(token)
        # the frame cannot resume before the global instant it waited for
        assert clock.pop_frame() == 5000

    def test_resume_keeps_later_cursor(self):
        clock = SimClock()
        clock.push_frame()
        clock.advance_ns(9000)
        token = clock.suspend_frames()
        clock.advance_ns(10)
        clock.resume_frames(token)
        assert clock.pop_frame() == 9000

    def test_suspend_with_no_frames_is_noop(self):
        clock = SimClock()
        token = clock.suspend_frames()
        clock.advance_ns(7)
        clock.resume_frames(token)
        assert clock.now_ns == 7
        assert not clock.in_frame


class TestFrameEdgeCases:
    """The corners the async ring and background readahead lean on."""

    def test_nested_stack_survives_suspend_resume(self):
        # a foreground frame nested inside a background one: suspending
        # must escape *both*, resuming must restore depth, cursors and the
        # background flag exactly
        clock = SimClock()
        clock.push_frame(background=True)
        clock.advance_ns(300)
        clock.push_frame()
        clock.advance_ns(50)  # inner cursor at 350
        token = clock.suspend_frames()
        assert not clock.in_frame and not clock.in_background
        clock.advance_ns(100)  # foreground work at global time
        clock.resume_frames(token)
        assert clock.in_frame and clock.in_background
        assert clock.pop_frame() == 350  # inner, ahead of global: untouched
        assert clock.in_background
        assert clock.pop_frame() == 300
        assert not clock.in_background
        assert clock.global_now_ns == 100

    def test_push_pop_while_suspended(self):
        # code running under a pessimistic lock may itself split I/O into
        # frames; those nest on the *global* clock and must not leak into
        # the suspended stack
        clock = SimClock()
        clock.push_frame(start_ns=1_000, background=True)
        token = clock.suspend_frames()
        clock.push_frame()
        clock.advance_ns(80)
        assert clock.pop_frame() == 80
        assert not clock.in_frame
        clock.advance_to(80)
        clock.resume_frames(token)
        # the background frame resumed at its own (later) cursor
        assert clock.pop_frame() == 1_000

    def test_resume_pulls_only_stale_cursors(self):
        # two suspended frames, one behind and one ahead of the foreground
        # work: only the stale one is pulled up to the global clock
        clock = SimClock()
        clock.push_frame(start_ns=10)
        clock.push_frame(start_ns=9_000)
        token = clock.suspend_frames()
        clock.advance_ns(500)
        clock.resume_frames(token)
        assert clock.pop_frame() == 9_000
        assert clock.pop_frame() == 500

    def test_background_cursors_after_drain(self):
        # TaskRunner.drain is a sync point: the global clock lands on the
        # latest background completion, no frame is left active, and the
        # background flag is clean
        from repro.sim.tasks import TaskRunner

        clock = SimClock()
        runner = TaskRunner(clock)

        def work(cost):
            def gen():
                clock.advance_ns(cost)
                yield
                clock.advance_ns(cost)

            return gen()

        runner.spawn(work(100), background=True)
        runner.spawn(work(350), background=True)
        runner.drain()
        assert not clock.in_frame and not clock.in_background
        assert runner.completed_until_ns == 700
        assert clock.global_now_ns == 700

    def test_drained_runner_does_not_rewind(self):
        # a second drain (or one after the world moved on) never pulls the
        # clock backwards to an old background cursor
        from repro.sim.tasks import TaskRunner

        clock = SimClock()
        runner = TaskRunner(clock)

        def gen():
            clock.advance_ns(10)
            yield

        runner.spawn(gen(), background=True)
        runner.drain()
        clock.advance_to(5_000)
        runner.drain()
        assert clock.global_now_ns == 5_000

    def test_same_ns_completions_fold_deterministically(self):
        # sibling frames completing on the same nanosecond: the fold is
        # max(), so issue order cannot change the result, and a stable
        # (completion, index) sort gives one canonical ordering for ties
        clock = SimClock()
        completions = []
        for index, cost in enumerate((400, 400, 250)):
            clock.push_frame(start_ns=0)
            clock.advance_ns(cost)
            completions.append((clock.pop_frame(), index))
        clock.advance_to(max(c for c, _ in completions))
        assert clock.now_ns == 400
        assert sorted(completions) == [(250, 2), (400, 0), (400, 1)]
