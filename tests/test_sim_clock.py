"""Unit tests for the virtual clock."""

import pytest

from repro.sim.clock import NSEC_PER_SEC, SimClock, microseconds, milliseconds, seconds


class TestConversions:
    def test_seconds(self):
        assert seconds(1.0) == NSEC_PER_SEC

    def test_seconds_rounds(self):
        assert seconds(1.5e-9) == 2

    def test_microseconds(self):
        assert microseconds(3.0) == 3_000

    def test_milliseconds(self):
        assert milliseconds(2.0) == 2_000_000


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0

    def test_custom_start(self):
        assert SimClock(start_ns=500).now_ns == 500

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            SimClock(start_ns=-1)

    def test_advance(self):
        clock = SimClock()
        clock.advance_ns(100)
        clock.advance_ns(23)
        assert clock.now_ns == 123

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance_ns(7) == 7

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance_ns(-1)

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance_ns(0)
        assert clock.now_ns == 0

    def test_charge_seconds(self):
        clock = SimClock()
        clock.charge(0.5)
        assert clock.now_ns == NSEC_PER_SEC // 2

    def test_charge_us(self):
        clock = SimClock()
        clock.charge_us(2.5)
        assert clock.now_ns == 2500

    def test_now_seconds(self):
        clock = SimClock()
        clock.advance_ns(NSEC_PER_SEC)
        assert clock.now() == pytest.approx(1.0)

    def test_integer_precision_no_drift(self):
        clock = SimClock()
        for _ in range(1_000):
            clock.advance_ns(3)
        assert clock.now_ns == 3_000


class TestStopwatch:
    def test_elapsed(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance_ns(42)
        assert watch.elapsed_ns == 42

    def test_elapsed_seconds(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.charge(2.0)
        assert watch.elapsed == pytest.approx(2.0)

    def test_restart(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance_ns(10)
        watch.restart()
        clock.advance_ns(5)
        assert watch.elapsed_ns == 5
