"""Distributed Mux (§4): "designing a Mux-to-Mux interconnection ... a set
of machines mounting traditional file systems can be integrated into a
distributed storage system."

The composition needs no new mechanism: a *remote machine's Mux* is
reached through :class:`NetworkFileSystem` and registered as a tier of the
*local* Mux — exactly the "Mux-to-Mux interconnection" the paper
speculates about.  Because both ends speak the same VFS interface, the
local OCC migration, BLT bookkeeping and policies work unchanged across
the machine boundary.
"""

import pytest

from repro.core.policy import MigrationOrder
from repro.fs.nfs import NetworkFileSystem, network_profile
from repro.stack import build_stack
from repro.tools.fsck import check_mux
from repro.vfs.interface import OpenFlags

MIB = 1024 * 1024
BS = 4096


@pytest.fixture
def federation():
    """A local 2-tier Mux with a remote machine's 3-tier Mux as its
    capacity tier (shared clock = shared simulated time base)."""
    local = build_stack(
        tiers=["pm", "ssd"],
        capacities={"pm": 16 * MIB, "ssd": 32 * MIB},
        enable_cache=False,
    )
    remote = build_stack(
        capacities={"pm": 16 * MIB, "ssd": 32 * MIB, "hdd": 128 * MIB},
        enable_cache=False,
        clock=local.clock,
    )
    wire = NetworkFileSystem("wire", remote.mux, local.clock, rtt_us=250.0)
    local.vfs.mount("/tiers/remote-mux", wire)
    tier = local.mux.add_tier(
        "remote-mux", wire, "/tiers/remote-mux", network_profile(250.0, 1.25e9)
    )
    local.tier_ids["remote-mux"] = tier.tier_id
    return local, remote, wire


class TestMuxOverMux:
    def test_remote_mux_is_an_ordinary_tier(self, federation):
        local, remote, wire = federation
        assert "remote-mux" in [t.name for t in local.mux.registry.ordered()]
        # ranked last: it is the capacity tier
        assert local.mux.registry.ordered()[-1].name == "remote-mux"

    def test_write_read_through_the_federation(self, federation):
        local, remote, wire = federation
        mux = local.mux
        handle = mux.create("/doc")
        mux.write(handle, 0, b"crosses machines" * 100)
        assert mux.read(handle, 0, 16) == b"crosses machines"
        mux.close(handle)

    def test_migration_into_the_remote_mux(self, federation):
        local, remote, wire = federation
        mux = local.mux
        handle = mux.create("/archive")
        payload = bytes(range(256)) * 256  # 64 KiB
        mux.write(handle, 0, payload)
        remote_id = local.tier_id("remote-mux")
        result = mux.engine.migrate_now(
            MigrationOrder(
                handle.ino, 0, 16, local.tier_id("pm"), remote_id
            )
        )
        assert result.moved_blocks == 16
        # data now lives inside the REMOTE Mux, tiered by ITS policy
        assert remote.mux.exists("/archive")
        assert remote.mux.getattr("/archive").size >= len(payload)
        # and reads through the local Mux still return the right bytes
        assert mux.read(handle, 0, len(payload)) == payload
        assert wire.stats.get("rpcs") > 0
        mux.close(handle)

    def test_remote_mux_tiers_its_own_copy(self, federation):
        local, remote, wire = federation
        mux = local.mux
        handle = mux.create("/cold")
        mux.write(handle, 0, bytes(64 * BS))
        remote_id = local.tier_id("remote-mux")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 64, local.tier_id("pm"), remote_id)
        )
        # inside the remote machine, ITS Mux placed the blocks per ITS policy
        remote_inode = remote.mux.ns.resolve("/cold")
        assert remote_inode.blt.mapped_blocks() == 64
        # remote machine can migrate its copy internally, transparently
        remote.mux.engine.migrate_now(
            MigrationOrder(
                remote_inode.ino, 0, 64,
                remote.tier_id("pm"), remote.tier_id("hdd"),
            )
        )
        assert mux.read(handle, 0, 16) == bytes(16)
        mux.close(handle)

    def test_promotion_back_from_remote(self, federation):
        local, remote, wire = federation
        mux = local.mux
        handle = mux.create("/bounce")
        mux.write(handle, 0, b"R" * (8 * BS))
        remote_id = local.tier_id("remote-mux")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 8, local.tier_id("pm"), remote_id)
        )
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 0, 8, remote_id, local.tier_id("ssd"))
        )
        inode = mux.ns.get(handle.ino)
        assert inode.blt.tiers_used() == [local.tier_id("ssd")]
        # the remote copy was punched: its backing file holds no blocks
        remote_inode = remote.mux.ns.resolve("/bounce")
        assert remote_inode.blt.mapped_blocks() == 0
        assert mux.read(handle, 0, 8) == b"RRRRRRRR"
        mux.close(handle)

    def test_occ_races_across_the_wire(self, federation):
        from repro.sim.tasks import run_interleaved

        local, remote, wire = federation
        mux = local.mux
        handle = mux.create("/raced")
        mux.write(handle, 0, bytes(256 * BS))
        remote_id = local.tier_id("remote-mux")
        task = mux.engine.submit(
            MigrationOrder(handle.ino, 0, 256, local.tier_id("pm"), remote_id)
        )

        def racer(step):
            if step % 2 == 0:
                mux.write(handle, step * BS, b"LOCAL")

        result = run_interleaved(task, racer)
        inode = mux.ns.get(handle.ino)
        assert inode.blt.blocks_on(remote_id) == 256
        assert mux.read(handle, 0, 5) == b"LOCAL"
        assert check_mux(mux, deep=False) == []
        mux.close(handle)

    def test_remote_latency_visible(self, federation):
        local, remote, wire = federation
        mux = local.mux
        clock = local.clock
        handle = mux.create("/lat")
        mux.write(handle, 0, bytes(2 * BS))
        remote_id = local.tier_id("remote-mux")
        mux.engine.migrate_now(
            MigrationOrder(handle.ino, 1, 1, local.tier_id("pm"), remote_id)
        )
        t0 = clock.now_ns
        mux.read(handle, 0, 8)
        local_cost = clock.now_ns - t0
        t0 = clock.now_ns
        mux.read(handle, BS, 8)
        remote_cost = clock.now_ns - t0
        assert remote_cost >= local_cost + 200_000  # ≥ the RTT
        mux.close(handle)
