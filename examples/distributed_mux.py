#!/usr/bin/env python3
"""Distributed Mux (§4): the Mux-to-Mux interconnection.

"One ambitious idea is to extend Mux in a distributed manner.  By
designing a Mux-to-Mux interconnection (e.g., through Remote Procedure
Call) at the Mux layer ... a set of machines mounting traditional file
systems can be integrated into a distributed storage system."

Because Mux both implements and consumes the same VFS interface, the
interconnection needs *zero new Mux code*: a remote machine's Mux, reached
through the networked-file-system adapter, registers as an ordinary tier
of the local Mux.  Cold data migrates over the wire; the remote machine
then tiers its copy across its own devices with its own policy.

Run:  python examples/distributed_mux.py
"""

from repro import build_stack
from repro.core.policy import MigrationOrder
from repro.fs.nfs import NetworkFileSystem, network_profile

MIB = 1024 * 1024
BS = 4096


def spread(stack, mux_fs, path):
    names = {tid: n for n, tid in stack.tier_ids.items()}
    inode = mux_fs.ns.resolve(path)
    return {names[t]: inode.blt.blocks_on(t) for t in inode.blt.tiers_used()}


def main():
    # machine A: a small, fast box (PM + SSD)
    machine_a = build_stack(
        tiers=["pm", "ssd"],
        capacities={"pm": 32 * MIB, "ssd": 64 * MIB},
        enable_cache=False,
    )
    # machine B: a capacity box (PM + SSD + big HDD), same simulated world
    machine_b = build_stack(
        capacities={"pm": 16 * MIB, "ssd": 64 * MIB, "hdd": 512 * MIB},
        enable_cache=False,
        clock=machine_a.clock,
    )
    # the interconnection: B's Mux behind a 250 us / 10 GbE link,
    # registered as machine A's capacity tier
    wire = NetworkFileSystem("wire", machine_b.mux, machine_a.clock, rtt_us=250.0)
    machine_a.vfs.mount("/tiers/machine-b", wire)
    tier = machine_a.mux.add_tier(
        "machine-b", wire, "/tiers/machine-b", network_profile(250.0, 1.25e9)
    )
    machine_a.tier_ids["machine-b"] = tier.tier_id
    mux = machine_a.mux
    print("machine A tiers:",
          [t.name for t in mux.registry.ordered()], "\n")

    # --- a dataset lands on machine A's PM --------------------------------
    handle = mux.create("/dataset.bin")
    payload = bytes(range(256)) * 4096  # 1 MiB
    mux.write(handle, 0, payload)
    print(f"after write:    A sees {spread(machine_a, mux, '/dataset.bin')}")

    # --- it goes cold; A demotes it over the wire ---------------------------
    blocks = len(payload) // BS
    result = mux.engine.migrate_now(
        MigrationOrder(handle.ino, 0, blocks,
                       machine_a.tier_id("pm"), machine_a.tier_id("machine-b"))
    )
    print(f"after demotion: A sees {spread(machine_a, mux, '/dataset.bin')}"
          f"  ({result.moved_blocks} blocks crossed the wire, "
          f"{wire.stats.get('rpcs')} RPCs)")
    print(f"                B sees {spread(machine_b, machine_b.mux, '/dataset.bin')}")

    # --- machine B tiers its copy internally, invisibly to A ----------------
    b_inode = machine_b.mux.ns.resolve("/dataset.bin")
    machine_b.mux.engine.migrate_now(
        MigrationOrder(b_inode.ino, 0, blocks,
                       machine_b.tier_id("pm"), machine_b.tier_id("hdd"))
    )
    print(f"B re-tiers:     B sees {spread(machine_b, machine_b.mux, '/dataset.bin')}")

    # --- reads from A still work, paying the network + B's hierarchy --------
    t0 = machine_a.clock.now_ns
    assert mux.read(handle, 0, 256) == payload[:256]
    print(f"\nremote read from A: {(machine_a.clock.now_ns - t0) / 1000:.1f} us "
          f"(RTT + machine B's HDD)")

    # --- and the data can come home -----------------------------------------
    mux.engine.migrate_now(
        MigrationOrder(handle.ino, 0, blocks,
                       machine_a.tier_id("machine-b"), machine_a.tier_id("ssd"))
    )
    print(f"promoted home:  A sees {spread(machine_a, mux, '/dataset.bin')}")
    assert mux.read(handle, 0, len(payload)) == payload
    mux.close(handle)
    print("\nsame bytes end to end; OCC, BLT and policies never noticed the wire.")


if __name__ == "__main__":
    main()
