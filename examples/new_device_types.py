#!/usr/bin/env python3
"""The paper's headline scenario: a NEW device type arrives, and
integrating it into the tiered file system takes minutes, not a rewrite.

"To integrate new devices, dedicated file systems can be plugged directly
into the stack through a well-defined interface (e.g., Linux VFS),
without modification." (§1)

A CXL SSD shows up: byte-addressable, so the existing NOVA file system
drives it unchanged.  A glass-based archival unit shows up: block device,
so Ext4 drives it unchanged.  Both register with the running Mux as new
tiers; the policy, BLT, OCC migration and cache work across a FIVE-tier
hierarchy without one line of Mux changing.

Run:  python examples/new_device_types.py
"""

from repro import build_stack
from repro.core.policy import MigrationOrder
from repro.devices.cxl import ARCHIVAL, CXL_SSD, ArchivalDevice, CxlSsd
from repro.fs.ext4 import Ext4FileSystem
from repro.fs.nova import NovaFileSystem

MIB = 1024 * 1024
BS = 4096


def main():
    # start with the paper's classic three-tier hierarchy, running
    stack = build_stack(
        capacities={"pm": 32 * MIB, "ssd": 64 * MIB, "hdd": 256 * MIB}
    )
    mux = stack.mux
    mux.write_file("/already-running.txt", b"the system is live")

    # --- a CXL SSD arrives: byte-addressable, NOVA drives it ---------------
    cxl_dev = CxlSsd("cxl0", 128 * MIB, stack.clock)
    cxl_fs = NovaFileSystem("nova-cxl", cxl_dev, stack.clock)
    stack.vfs.mount("/tiers/cxl", cxl_fs)
    cxl = mux.add_tier("cxl", cxl_fs, "/tiers/cxl", CXL_SSD, rank=1)
    print("added CXL SSD tier   (NOVA, unchanged, rank 1 — alongside the SSD)")

    # --- an archival unit arrives: block device, Ext4 drives it -------------
    cold_dev = ArchivalDevice("glass0", 1024 * MIB, stack.clock)
    cold_fs = Ext4FileSystem("ext4-cold", cold_dev, stack.clock)
    stack.vfs.mount("/tiers/archive", cold_fs)
    archive = mux.add_tier("archive", cold_fs, "/tiers/archive", ARCHIVAL, rank=9)
    print("added archival tier  (Ext4, unchanged, rank 9 — coldest)\n")

    names = [t.name for t in mux.registry.ordered()]
    print(f"five-tier hierarchy: {' > '.join(names)}\n")

    # --- the old file is still there; new data flows through all five ------
    assert mux.read_file("/already-running.txt") == b"the system is live"
    handle = mux.create("/records.db")
    payload = bytes(range(256)) * 1024  # 256 KiB, lands on PM
    mux.write(handle, 0, payload)

    # warm data steps down to the CXL tier...
    mux.engine.migrate_now(
        MigrationOrder(handle.ino, 0, 64, stack.tier_id("pm"), cxl.tier_id)
    )
    # ...and ancient history goes to glass (every pair works — Figure 3a)
    mux.engine.migrate_now(
        MigrationOrder(handle.ino, 32, 32, cxl.tier_id, archive.tier_id)
    )
    inode = mux.ns.get(handle.ino)
    tier_names = {t.tier_id: t.name for t in mux.registry.ordered()}
    spread = {tier_names[t]: inode.blt.blocks_on(t) for t in inode.blt.tiers_used()}
    print(f"/records.db spread: {spread}")

    t0 = stack.clock.now_ns
    assert mux.read(handle, 0, 16) == payload[:16]  # cxl-resident
    cxl_us = (stack.clock.now_ns - t0) / 1000
    cold_fs.page_cache.drop_clean()  # the migrated pages fall out of DRAM
    t0 = stack.clock.now_ns
    assert mux.read(handle, 40 * BS, 16) == payload[40 * BS : 40 * BS + 16]
    cold_ms = (stack.clock.now_ns - t0) / 1e6
    print(f"read from CXL tier:     {cxl_us:8.1f} us")
    print(f"read from glass tier:   {cold_ms:8.1f} ms (first touch; now SCM-cached)")
    t0 = stack.clock.now_ns
    mux.read(handle, 40 * BS, 16)
    print(f"re-read (SCM cache):    {(stack.clock.now_ns - t0) / 1000:8.1f} us")

    mux.close(handle)
    print("\nno Mux code changed; two new device types joined at runtime.")


if __name__ == "__main__":
    main()
