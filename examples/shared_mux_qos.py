#!/usr/bin/env python3
"""Sharing Mux among applications (§4).

"Sharing Mux among multiple applications may also require scheduling
schemes that support priority, deadline, and/or quota ... or ensure that
high-priority tasks are not impeded."

Three tenants share one Mux: an interactive database (unlimited), a batch
analytics job (bandwidth quota) and a background scrubber (pinned to the
capacity tier so it can never pollute PM).

Run:  python examples/shared_mux_qos.py
"""

from repro import build_stack
from repro.core.qos import IoClass

MIB = 1024 * 1024


def main():
    stack = build_stack(capacities={"pm": 32 * MIB, "ssd": 96 * MIB, "hdd": 512 * MIB})
    mux = stack.mux
    qos = mux.enable_qos()
    qos.register(IoClass("analytics", quota_bytes_per_sec=100e6, burst_bytes=MIB))
    qos.register(IoClass("scrubber", pinned_tier=stack.tier_id("hdd")))

    clock = stack.clock

    # --- interactive database: full speed, lands on PM --------------------
    db = mux.create("/db.tbl")
    t0 = clock.now_ns
    for i in range(16):
        mux.write(db, i * MIB, bytes(MIB))
    db_mb_s = 16 * MIB / 1e6 / ((clock.now_ns - t0) / 1e9)

    # --- batch analytics: same writes, 100 MB/s quota ----------------------
    batch = mux.create("/batch.out")
    qos.tag(batch, "analytics")
    t0 = clock.now_ns
    for i in range(16):
        mux.write(batch, i * MIB, bytes(MIB))
    batch_mb_s = 16 * MIB / 1e6 / ((clock.now_ns - t0) / 1e9)

    # --- scrubber: writes forced onto the HDD tier --------------------------
    scrub = mux.create("/scrub.tmp")
    qos.tag(scrub, "scrubber")
    for i in range(8):
        mux.write(scrub, i * MIB, bytes(MIB))
    scrub_inode = mux.ns.get(scrub.ino)
    names = {tid: n for n, tid in stack.tier_ids.items()}

    print(f"interactive db : {db_mb_s:8,.0f} MB/s (unlimited, placed by policy)")
    print(f"batch analytics: {batch_mb_s:8,.0f} MB/s (quota 100 MB/s enforced)")
    print(f"scrubber       : placed on {[names[t] for t in scrub_inode.blt.tiers_used()]}"
          f" (pinned away from PM)")
    throttled = qos.stats.get("throttled_ops.analytics")
    print(f"\nthrottle events for analytics: {throttled}")
    print()
    print(mux.report())
    for handle in (db, batch, scrub):
        mux.close(handle)


if __name__ == "__main__":
    main()
