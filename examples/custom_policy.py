#!/usr/bin/env python3
"""User-defined tiering policies (§2.1): "Mux ... exposes an interface for
users to specify policies on data placement and user request dispatching.
All the placement and migration policies in existing tiered file systems
can be expressed using simple functions."

This example (a) uses the built-in TPFS-style policy, and (b) registers a
brand-new policy — a log/database split that pins write-ahead logs to PM
and cold table data to HDD — in ~20 lines, without touching Mux.

Run:  python examples/custom_policy.py
"""

from repro import build_stack
from repro.core.policies import TpfsPolicy
from repro.core.policy import Policy, make_policy, register_policy

MIB = 1024 * 1024
KIB = 1024


def placement_of(stack, path):
    names = {tid: n for n, tid in stack.tier_ids.items()}
    inode = stack.mux.ns.resolve(path)
    return {names[t]: inode.blt.blocks_on(t) for t in inode.blt.tiers_used()}


def demo_tpfs():
    print("=== TPFS-style policy: route by I/O size and synchronicity ===")
    stack = build_stack(policy=TpfsPolicy(), enable_cache=False)
    mux = stack.mux

    small = mux.create("/small-sync-writes.log")
    for i in range(8):
        mux.write(small, i * 4 * KIB, b"x" * (4 * KIB))  # small -> PM

    large = mux.create("/bulk-dataset.bin")
    mux.write(large, 0, bytes(8 * MIB))  # large -> HDD

    print(f"  /small-sync-writes.log -> {placement_of(stack, '/small-sync-writes.log')}")
    print(f"  /bulk-dataset.bin      -> {placement_of(stack, '/bulk-dataset.bin')}")
    mux.close(small)
    mux.close(large)


@register_policy("wal-split")
class WalSplitPolicy(Policy):
    """Pin write-ahead logs to the fastest tier, table data to the slowest.

    The whole policy is this one function — the paper's point about
    expressing tiering rules as simple functions.
    """

    def place_write(self, request, tiers):
        by_rank = sorted(tiers, key=lambda t: t.rank)
        if request.path.endswith(".wal"):
            return by_rank[0].tier_id  # logs: latency-critical
        return by_rank[-1].tier_id  # table data: capacity-critical


def demo_custom():
    print("\n=== custom 'wal-split' policy registered at runtime ===")
    stack = build_stack(policy=make_policy("wal-split"), enable_cache=False)
    mux = stack.mux

    mux.mkdir("/db")
    wal = mux.create("/db/commit.wal")
    data = mux.create("/db-table.bin")
    for i in range(16):
        mux.write(wal, i * 512, b"commit record" + bytes(499))
    mux.write(data, 0, bytes(4 * MIB))

    print(f"  /db/commit.wal -> {placement_of(stack, '/db/commit.wal')}")
    print(f"  /db-table.bin  -> {placement_of(stack, '/db-table.bin')}")

    wal_latency = []
    t0 = stack.clock.now_ns
    mux.write(wal, 16 * 512, b"one more commit")
    wal_latency.append(stack.clock.now_ns - t0)
    print(f"  WAL append latency on PM: {wal_latency[0] / 1000:.2f} us")
    mux.close(wal)
    mux.close(data)


def main():
    demo_tpfs()
    demo_custom()


if __name__ == "__main__":
    main()
