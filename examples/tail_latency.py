#!/usr/bin/env python3
"""Tail latency under background migration.

Mean throughput hides what tiered storage does to the *tail*.  We run the
same read workload twice — once quiescent, once while the policy runner
migrates cold data in the background — and compare p50/p99/max using
Mux's built-in latency histograms.  The OCC design's promise (§2.4) is
that migration stays off the critical path; the p99 shows by how much.

Run:  python examples/tail_latency.py
"""

from repro import build_stack
from repro.core.policy import MigrationOrder
from repro.sim.rng import DeterministicRng

MIB = 1024 * 1024
BS = 4096


def run_reads(mux, clock, handle, iterations, rng, migration_task=None):
    mux.enable_latency_recording()
    size = mux.getattr(handle.path).size
    for i in range(iterations):
        offset = rng.randint(0, size - 64)
        mux.read(handle, offset, 64)
        if migration_task is not None:
            migration_task.step()  # background migration makes progress
    return mux.latencies["read"].summary_us()


def show(label, summary):
    print(f"  {label:28s} p50 {summary['p50_us']:8.2f} us | "
          f"p99 {summary['p99_us']:8.2f} us | max {summary['max_us']:8.2f} us")


def main():
    stack = build_stack(capacities={"pm": 64 * MIB, "ssd": 128 * MIB, "hdd": 256 * MIB})
    mux = stack.mux
    handle = mux.create("/hot.bin")
    chunk = bytes(MIB)
    for off in range(0, 24 * MIB, MIB):
        mux.write(handle, off, chunk)
    print("24 MiB file on the PM tier; reading 64 B at random offsets\n")

    # --- quiescent baseline ----------------------------------------------
    quiet = run_reads(mux, stack.clock, handle, 3000, DeterministicRng(3))
    show("quiescent", quiet)

    # --- same reads while 16 MiB migrates pm -> ssd underneath -------------
    task = mux.engine.submit(
        MigrationOrder(handle.ino, 0, 16 * MIB // BS,
                       stack.tier_id("pm"), stack.tier_id("ssd"))
    )
    busy = run_reads(mux, stack.clock, handle, 3000, DeterministicRng(3), task)
    task.join()
    show("during 16 MiB OCC migration", busy)

    slowdown = busy["p99_us"] / quiet["p99_us"]
    print(f"\np99 inflation while migrating: {slowdown:.2f}x "
          f"(reads never block behind the movement; they just share the clock)")
    assert mux.read(handle, 0, 4) == chunk[:4]
    mux.close(handle)


if __name__ == "__main__":
    main()
