#!/usr/bin/env python3
"""Crash-consistency composition (§4): "the crash consistency properties
of Mux are composed of those of the participating file systems.  Mux sends
fsync requests to all the file systems that are responsible for a given
file ... Upon a crash, Mux relies on each participating file system to
recover the data blocks it stores."

We place one file's blocks on NOVA (durable at write return) and Ext4
(durable only after fsync), crash the machine, recover, and inspect what
each participating file system preserved.

Run:  python examples/crash_consistency_demo.py
"""

from repro import build_stack
from repro.core.policies import PinnedPolicy
from repro.core.policy import MigrationOrder

BS = 4096
MIB = 1024 * 1024


def main():
    stack = build_stack(enable_cache=False)
    mux = stack.mux
    pm_id, hdd_id = stack.tier_id("pm"), stack.tier_id("hdd")

    # --- build a file that spans NOVA/PM and Ext4/HDD --------------------
    handle = mux.create("/journal.db")
    mux.write(handle, 0, b"P" * (4 * BS))  # blocks 0-3 on NOVA
    mux.engine.migrate_now(
        MigrationOrder(handle.ino, 2, 2, pm_id, hdd_id)
    )  # blocks 2-3 now on Ext4 (commit fsyncs the destination)
    print("file spans two file systems:",
          {t: mux.ns.get(handle.ino).blt.blocks_on(t)
           for t in mux.ns.get(handle.ino).blt.tiers_used()})

    # --- make some updates durable, leave others volatile -----------------
    mux.write(handle, 0, b"pm-durable-without-fsync")  # NOVA: flushed at return
    mux.policy = PinnedPolicy(hdd_id)
    mux.write(handle, 2 * BS, b"hdd-data-fsynced")
    mux.fsync(handle)  # fans out to NOVA *and* Ext4
    mux.write(handle, 3 * BS, b"hdd-data-NOT-fsynced")  # sits in ext4 page cache
    print("\nbefore crash:")
    print(f"  block 0 (NOVA, no fsync): {mux.read(handle, 0, 24)!r}")
    print(f"  block 2 (Ext4, fsynced):  {mux.read(handle, 2 * BS, 16)!r}")
    print(f"  block 3 (Ext4, volatile): {mux.read(handle, 3 * BS, 20)!r}")

    # --- power cut ----------------------------------------------------------
    print("\n*** CRASH ***  (all DRAM state lost; journals + PM survive)")
    mux.crash()
    mux.recover()  # each participating FS runs its own recovery

    handle = mux.open("/journal.db")
    b0 = mux.read(handle, 0, 24)
    b2 = mux.read(handle, 2 * BS, 16)
    b3 = mux.read(handle, 3 * BS, 20)
    print("\nafter recovery:")
    print(f"  block 0 (NOVA, no fsync): {b0!r}   <- survived: NOVA flushes at write")
    print(f"  block 2 (Ext4, fsynced):  {b2!r}   <- survived: ordered journal")
    print(f"  block 3 (Ext4, volatile): {b3!r}   <- lost: was only in the page cache")

    assert b0 == b"pm-durable-without-fsync"
    assert b2 == b"hdd-data-fsynced"
    assert b3 != b"hdd-data-NOT-fsynced"
    print("\ncomposition verified: each FS kept exactly what its own "
          "crash-consistency contract promises.")
    mux.close(handle)


if __name__ == "__main__":
    main()
