#!/usr/bin/env python3
"""Application-level workloads on three storage stacks.

The paper's pitch is that heterogeneous hierarchies serve real
applications better than any single device.  We run filebench-style
fileserver / webserver / varmail personalities against:

  1. Ext4 on the HDD alone (the capacity-only baseline),
  2. Strata over PM+SSD+HDD (monolithic tiered FS),
  3. Mux over NOVA+XFS+Ext4 (this paper).

Run:  python examples/macro_workloads.py
"""

from repro.bench.harness import build_strata
from repro.bench.macro import ALL_WORKLOADS
from repro.devices.hdd import HardDiskDrive
from repro.fs.ext4 import Ext4FileSystem
from repro.sim.clock import SimClock
from repro.stack import build_stack

MIB = 1024 * 1024
CAPS = {"pm": 64 * MIB, "ssd": 128 * MIB, "hdd": 512 * MIB}


def run_on_ext4(workload):
    clock = SimClock()
    hdd = HardDiskDrive("hdd0", CAPS["hdd"], clock)
    fs = Ext4FileSystem("ext4", hdd, clock)
    return workload(fs, clock)


def run_on_strata(workload):
    stack = build_strata(capacities=CAPS)
    return workload(stack.fs, stack.clock)


def run_on_mux(workload):
    stack = build_stack(capacities=CAPS)
    result = workload(stack.mux, stack.clock)
    stack.mux.maintain()  # let the policy settle (not timed)
    return result


def main():
    stacks = [
        ("ext4/HDD only", run_on_ext4),
        ("Strata (PM+SSD+HDD)", run_on_strata),
        ("Mux (NOVA+XFS+Ext4)", run_on_mux),
    ]
    for name, workload in ALL_WORKLOADS.items():
        print(f"=== {name} ===")
        baseline = None
        for label, runner in stacks:
            result = runner(workload)
            speedup = ""
            if baseline is None:
                baseline = result.ops_per_sec
            else:
                speedup = f"   ({result.ops_per_sec / baseline:.1f}x vs HDD-only)"
            print(f"  {label:22s} {result.ops_per_sec:12,.0f} ops/s"
                  f"  ({result.mean_latency_us:8.1f} us/op){speedup}")
        print()


if __name__ == "__main__":
    main()
