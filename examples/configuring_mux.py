#!/usr/bin/env python3
"""Configuring Mux (§4): find the best policy/cache/tier configuration
for a given workload by *measuring*, not guessing.

Because the whole stack runs on simulated time, the auto-tuner replays
the exact same deterministic request stream against every candidate
configuration and ranks them — different workloads pick different
winners, which is the paper's point about needing a configuration story.

Run:  python examples/configuring_mux.py
"""

from repro.bench.macro import fileserver, varmail, webserver
from repro.core.autotune import AutoTuner

MIB = 1024 * 1024
# a small PM tier creates real capacity pressure: placement and demotion
# decisions matter, so configurations genuinely diverge
CAPS = {"pm": 8 * MIB, "ssd": 32 * MIB, "hdd": 256 * MIB}

WORKLOADS = [
    ("varmail (fsync-heavy mail spool)", varmail, {"operations": 400}),
    (
        "webserver (hot-set reads + log)",
        webserver,
        {"files": 150, "operations": 600},
    ),
    (
        "fileserver (mixed create/read/append)",
        fileserver,
        {"files": 40, "operations": 300},
    ),
]


def main():
    for label, workload, kwargs in WORKLOADS:
        print(f"=== {label} ===")
        tuner = AutoTuner(workload, capacities=CAPS, **kwargs)
        evaluations = tuner.run()
        for rank, evaluation in enumerate(evaluations, 1):
            marker = " <== best" if rank == 1 else ""
            print(f"  {rank}. {evaluation}{marker}")
        print()
    print("Same hardware, same requests — the right Mux configuration is")
    print("workload-dependent, and the simulator makes picking it cheap.")


if __name__ == "__main__":
    main()
