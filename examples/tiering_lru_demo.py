#!/usr/bin/env python3
"""The paper's evaluation policy in action (§3.1): "a simple LRU policy
that evicts cold data to the slower device if no space left on faster
devices, and promotes data back upon access."

We write more data than the PM tier can hold, watch the policy runner
demote the coldest chunks downhill, then re-read an old file and watch
its blocks get promoted back.

Run:  python examples/tiering_lru_demo.py
"""

from repro import build_stack
from repro.core.policies import LruTieringPolicy

MIB = 1024 * 1024


def occupancy(stack):
    cells = []
    for name, fs in stack.filesystems.items():
        stats = fs.statfs()
        cells.append(f"{name} {100 * stats.utilization:5.1f}%")
    return " | ".join(cells)


def main():
    policy = LruTieringPolicy(high_watermark=0.7, low_watermark=0.5)
    stack = build_stack(
        capacities={"pm": 16 * MIB, "ssd": 48 * MIB, "hdd": 128 * MIB},
        policy=policy,
        enable_cache=False,
    )
    mux = stack.mux
    print(f"initial: {occupancy(stack)}\n")

    # --- phase 1: write ten 3 MiB files; PM (16 MiB) cannot hold them ----
    print("writing 10 x 3 MiB files (PM tier holds ~5)...")
    handles = {}
    for i in range(10):
        path = f"/file{i:02d}.bin"
        handle = mux.create(path)
        mux.write(handle, 0, bytes([i]) * (3 * MIB))
        handles[path] = handle
        moved = mux.maintain()  # run the policy: demote cold chunks
        if moved:
            print(f"  after {path}: ran {moved:3d} migrations -> {occupancy(stack)}")
    print(f"\nsteady state: {occupancy(stack)}")

    names = {tid: n for n, tid in stack.tier_ids.items()}
    for path, handle in list(handles.items())[:4]:
        inode = mux.ns.get(handle.ino)
        spread = {names[t]: inode.blt.blocks_on(t) for t in inode.blt.tiers_used()}
        print(f"  {path}: {spread}")

    # --- phase 2: a cold file gets hot again -------------------------------
    victim = "/file00.bin"
    inode = mux.ns.get(handles[victim].ino)
    pm_id = stack.tier_id("pm")
    print(f"\nre-reading cold {victim} (currently "
          f"{inode.blt.blocks_on(pm_id)} blocks on pm)...")
    for _ in range(3):
        mux.read(handles[victim], 0, 1 * MIB)
        mux.maintain()  # promotions queued by on_access get executed
    print(f"after access: {inode.blt.blocks_on(pm_id)} blocks of {victim} on pm")
    print(f"final occupancy: {occupancy(stack)}")

    # data integrity after all that movement
    assert mux.read(handles[victim], 0, 64) == bytes([0]) * 64
    for handle in handles.values():
        mux.close(handle)
    stats = mux.engine.stats
    print(f"\nmigration engine: {stats.get('migrations')} migrations, "
          f"{stats.get('blocks_moved')} blocks moved, "
          f"{stats.get('occ_attempts')} OCC attempts, "
          f"{stats.get('lock_fallbacks')} lock fallbacks")
    print(f"simulated time: {stack.clock.now():.3f} s")


if __name__ == "__main__":
    main()
