#!/usr/bin/env python3
"""The OCC Synchronizer under fire (§2.4).

A large migration runs as a background task while a foreground workload
keeps writing into the file being moved.  OCC detects the conflicting
blocks by version/dirty tracking, commits the clean ones, retries the
dirty ones, and (under sustained hostility) falls back to a lock — while
the file's contents stay correct throughout.

Run:  python examples/migration_race_demo.py
"""

from repro import build_stack
from repro.core.policy import MigrationOrder
from repro.sim.rng import DeterministicRng

BS = 4096
MIB = 1024 * 1024


def main():
    stack = build_stack(enable_cache=False)
    mux = stack.mux
    rng = DeterministicRng(23)

    handle = mux.create("/hot-table.bin")
    blocks = 2048  # 8 MiB
    mux.write(handle, 0, bytes(blocks * BS))
    inode = mux.ns.get(handle.ino)
    print(f"created 8 MiB file on the pm tier ({blocks} blocks)\n")

    # reference model of what the file should contain
    model = bytearray(blocks * BS)

    # --- start an asynchronous whole-file migration pm -> ssd ------------
    task = mux.engine.submit(
        MigrationOrder(
            handle.ino, 0, blocks, stack.tier_id("pm"), stack.tier_id("ssd")
        )
    )
    print("migration started; writing into the file while it moves...")

    step = 0
    writes = 0
    while task.step():
        # foreground workload: two random 1 KiB writes per migration step
        for _ in range(2):
            offset = rng.randint(0, blocks * BS - 1024)
            data = bytes([writes % 251]) * 1024
            mux.write(handle, offset, data)
            model[offset : offset + 1024] = data
            writes += 1
        step += 1
    result = task.result

    print(f"\nmigration finished after {step} cooperative steps")
    print(f"  foreground writes during migration: {writes}")
    print(f"  OCC attempts:      {result.attempts}")
    print(f"  conflicts detected:{result.conflicts:5d} (dirty blocks retried)")
    print(f"  lock fallback:     {result.lock_fallback}")
    print(f"  blocks moved:      {result.moved_blocks}")

    # --- verify: not a single user write was lost or overwritten ----------
    content = mux.read(handle, 0, blocks * BS)
    assert content == bytes(model), "user data corrupted by migration!"
    ssd_id = stack.tier_id("ssd")
    print(f"\nverified: all {writes} concurrent writes preserved, "
          f"{inode.blt.blocks_on(ssd_id)}/{blocks} blocks now on ssd")
    print(f"file version counter: {inode.version} "
          f"(incremented at each movement start/end)")
    mux.close(handle)


if __name__ == "__main__":
    main()
