#!/usr/bin/env python3
"""Quickstart: assemble the paper's PM+SSD+HDD hierarchy under Mux and do
ordinary file I/O while watching how Mux places and tracks blocks.

Run:  python examples/quickstart.py
"""

from repro import build_stack
from repro.core.policy import MigrationOrder

MIB = 1024 * 1024


def show_distribution(stack, inode, label):
    names = {tid: name for name, tid in stack.tier_ids.items()}
    per_tier = {
        names[t]: inode.blt.blocks_on(t) for t in inode.blt.tiers_used()
    }
    print(f"  {label}: {per_tier or 'no blocks yet'}")


def main():
    # One call builds: PM+NOVA, SSD+XFS, HDD+Ext4, a shared VFS, and Mux
    # with the paper's LRU tiering policy and the SCM cache.
    stack = build_stack()
    mux = stack.mux
    print(f"tiers: {', '.join(f'{n} (id {t})' for n, t in stack.tier_ids.items())}")
    print(f"aggregate capacity: {mux.statfs().total_bytes // MIB} MiB\n")

    # --- ordinary POSIX-style I/O through the Mux namespace --------------
    mux.mkdir("/projects")
    handle = mux.create("/projects/data.bin")
    payload = b"tiered storage, but through file systems" * 1000
    mux.write(handle, 0, payload)
    assert mux.read(handle, 0, 40) == payload[:40]
    print(f"wrote {len(payload)} bytes to /projects/data.bin")

    inode = mux.ns.get(handle.ino)
    show_distribution(stack, inode, "block placement after write")

    # --- sparse files work across the hierarchy ---------------------------
    mux.write(handle, 8 * MIB, b"far away tail")
    st = mux.getattr("/projects/data.bin")
    print(f"  sparse write -> size {st.size} bytes, allocated {st.blocks * 512 // 1024} KiB")

    # --- explicit migration between ANY pair of tiers ---------------------
    end = inode.blt.end_block()
    result = mux.engine.migrate_now(
        MigrationOrder(
            handle.ino, 0, end, stack.tier_id("pm"), stack.tier_id("hdd")
        )
    )
    print(f"\nmigrated {result.moved_blocks} blocks pm -> hdd "
          f"({result.attempts} OCC attempt(s))")
    show_distribution(stack, inode, "block placement after migration")
    assert mux.read(handle, 0, 40) == payload[:40]

    # --- metadata affinity (§2.3) -----------------------------------------
    owners = mux.getattr("/projects/data.bin").extra["affinity"]
    names = {tid: name for name, tid in stack.tier_ids.items()}
    print("\nmetadata affinity (attribute -> owning file system):")
    for attr, tier in owners.items():
        print(f"  {attr:6s} -> {names.get(tier, tier)}")

    mux.fsync(handle)
    mux.close(handle)
    print(f"\nsimulated time elapsed: {stack.clock.now() * 1000:.3f} ms")


if __name__ == "__main__":
    main()
